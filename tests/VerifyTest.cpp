//===- tests/VerifyTest.cpp - Mutation suite for the table verifier ----------===//
//
// Part of flap-cpp, a C++ reproduction of "flap: A Deterministic Parser
// with Fused Lexing" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// The verifier's contract is negative: engine/Verify.h must flag a
/// corrupted table *before* the hot loops ever see it. This suite
/// injects single-field corruptions — one mutated copy per field class,
/// over every benchmark grammar — and requires the verifier to report
/// an Error or Warning for at least 95% of the applied mutations. The
/// misses that remain must be harmless in the strongest sense we can
/// test: any mutated table the verifier passes is fed to the engine,
/// which must complete a parse without crashing.
///
/// Every mutation flips exactly one field (one table entry, one bound,
/// one bit, one claim), modelling a staging bug or a bit-rot of a
/// serialized artifact — not adversarial multi-field forgeries, which
/// can always re-fake the redundant encodings wholesale.
///
//===----------------------------------------------------------------------===//

#include "engine/Verify.h"

#include "engine/Compile.h"
#include "engine/Pipeline.h"
#include "grammars/Grammars.h"
#include "lexer/CompiledLexer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace flap {

/// Friend of CompiledLexer: hands the mutation suite mutable references
/// into the private DFA tables (declared in lexer/CompiledLexer.h).
class VerifyTestPeer {
public:
  static Alphabet &alpha(CompiledLexer &L) { return L.Alpha; }
  static Table<int32_t> &trans(CompiledLexer &L) { return L.Trans; }
  static Table<int16_t> &trans16(CompiledLexer &L) { return L.Trans16; }
  static Table<uint8_t> &trans8(CompiledLexer &L) { return L.Trans8; }
  static int32_t &numTerm(CompiledLexer &L) { return L.NumTerm; }
  static int32_t &numPureRun(CompiledLexer &L) { return L.NumPureRun; }
  static int32_t &numAccept(CompiledLexer &L) { return L.NumAccept; }
  static Table<int32_t> &accept(CompiledLexer &L) { return L.Accept; }
  static Table<SkipSet> &skip(CompiledLexer &L) { return L.Skip; }
  static Table<TokenId> &toks(CompiledLexer &L) { return L.Toks; }
  static int32_t &start(CompiledLexer &L) { return L.Start; }
};

} // namespace flap

using namespace flap;

namespace {

/// An Error or Warning counts as detection; lints are advisory and can
/// legitimately fire on healthy tables.
bool detected(const VerifyReport &R) {
  for (const VerifyFinding &F : R.Findings)
    if (F.Sev != VerifyFinding::Severity::Lint)
      return true;
  return false;
}

/// A known-good input per grammar, used to drive the engine over any
/// mutated table the verifier failed to flag (the zero-crash contract).
std::string sampleInput(const std::string &Name) {
  if (Name == "json")
    return "{\"a\": [1, 2], \"b\": true}";
  if (Name == "sexp")
    return "(a (b c) d)";
  if (Name == "csv")
    return "a,b\r\n1,2\r\n";
  if (Name == "pgn")
    return "[Event \"casual\"]\n[White \"ann\"]\n[Black \"bob\"]\n\n"
           "1. e4 e5 2. Nf3 Nc6 1-0\n\n";
  if (Name == "ppm")
    return "P3\n1 1\n255\n0 1 2\n";
  return "1 + 2 * 3"; // arith
}

struct ParserMutation {
  const char *Name;
  /// Applies the corruption in place; false = not applicable to this
  /// grammar's tables (nothing was changed).
  std::function<bool(CompiledParser &)> Apply;
};

struct LexerMutation {
  const char *Name;
  std::function<bool(CompiledLexer &)> Apply;
};

/// Flips the lowest set bit of a nonempty SkipSet.
bool dropOneBit(SkipSet &S) {
  for (int W = 0; W < 4; ++W)
    if (S.Bits[W]) {
      S.Bits[W] &= S.Bits[W] - 1;
      return true;
    }
  return false;
}

std::vector<ParserMutation> parserMutations() {
  std::vector<ParserMutation> Ms;
  auto Add = [&](const char *Name,
                 std::function<bool(CompiledParser &)> Fn) {
    Ms.push_back({Name, std::move(Fn)});
  };

  // Tier bounds: each ±1 either breaks the monotone chain or moves one
  // state into a tier whose shape it cannot satisfy.
  Add("NumPureSkip+1", [](CompiledParser &M) { ++M.NumPureSkip; return true; });
  Add("NumPureSkip-1", [](CompiledParser &M) {
    if (M.NumPureSkip == 0)
      return false;
    --M.NumPureSkip;
    return true;
  });
  Add("NumSelfSkip+1", [](CompiledParser &M) { ++M.NumSelfSkip; return true; });
  Add("NumSelfSkip-1", [](CompiledParser &M) {
    if (M.NumSelfSkip == 0)
      return false;
    --M.NumSelfSkip;
    return true;
  });
  Add("NumTermAcc+1", [](CompiledParser &M) { ++M.NumTermAcc; return true; });
  Add("NumTermAcc-1", [](CompiledParser &M) {
    if (M.NumTermAcc == 0)
      return false;
    --M.NumTermAcc;
    return true;
  });
  Add("NumPureAcc+1", [](CompiledParser &M) { ++M.NumPureAcc; return true; });
  Add("NumAccept+1", [](CompiledParser &M) { ++M.NumAccept; return true; });
  Add("NumAccept-1", [](CompiledParser &M) {
    if (M.NumAccept == 0)
      return false;
    --M.NumAccept;
    return true;
  });

  // Transition tables: the three encodings are redundant, so any
  // single-entry change breaks pairwise agreement.
  Add("Trans16 flip", [](CompiledParser &M) {
    if (M.Trans16.empty())
      return false;
    M.Trans16[0] = M.Trans16[0] == CompiledParser::Dead ? 0
                                                        : CompiledParser::Dead;
    return true;
  });
  Add("Trans16 out-of-range", [](CompiledParser &M) {
    if (M.Trans16.empty())
      return false;
    M.Trans16[0] = static_cast<int16_t>(M.numStates());
    return true;
  });
  Add("Trans flip", [](CompiledParser &M) {
    if (M.Trans.empty())
      return false;
    M.Trans[0] = M.Trans[0] == CompiledParser::Dead ? 0 : CompiledParser::Dead;
    return true;
  });
  Add("Trans8 flip", [](CompiledParser &M) {
    if (M.Trans8.empty())
      return false;
    M.Trans8[0] = M.Trans8[0] == CompiledParser::Dead8 ? 0
                                                       : CompiledParser::Dead8;
    return true;
  });
  Add("ClsMap flip", [](CompiledParser &M) {
    if (M.numClasses() < 2)
      return false;
    M.ClsMap[0] =
        static_cast<uint8_t>((M.ClsMap[0] + 1) % M.numClasses());
    return true;
  });

  // Accept prefix and metadata words.
  Add("AcceptCont cleared", [](CompiledParser &M) {
    if (M.NumAccept == 0)
      return false;
    M.AcceptCont[0] = -1;
    return true;
  });
  Add("AccMeta off+1", [](CompiledParser &M) {
    for (int32_t S = 0; S < M.NumAccept; ++S)
      if (CompiledParser::metaLen(M.AccMeta[S]) > 0) {
        M.AccMeta[S] += 1; // Off lives in the low 32 bits
        return true;
      }
    return false;
  });
  Add("AccMeta len+1", [](CompiledParser &M) {
    if (M.NumAccept == 0)
      return false;
    M.AccMeta[0] += uint64_t(1) << 32;
    return true;
  });
  Add("AccMeta token elided", [](CompiledParser &M) {
    for (int32_t S = 0; S < M.NumAccept; ++S)
      if (CompiledParser::metaTok(M.AccMeta[S]) != CompiledParser::MetaNoTok) {
        M.AccMeta[S] |= uint64_t(CompiledParser::MetaNoTok) << 48;
        return true;
      }
    return false;
  });
  Add("AccMeta token flipped", [](CompiledParser &M) {
    for (int32_t S = 0; S < M.NumAccept; ++S) {
      uint32_t T = CompiledParser::metaTok(M.AccMeta[S]);
      if (T != CompiledParser::MetaNoTok && T + 1 != CompiledParser::MetaNoTok) {
        M.AccMeta[S] += uint64_t(1) << 48;
        return true;
      }
    }
    return false;
  });
  Add("AccMeta token conjured", [](CompiledParser &M) {
    // Un-elide: restore the head token the rewrite removed. The token
    // check passes (it matches PushTok); only the value-flow audit can
    // see the extra push.
    for (int32_t S = 0; S < M.NumAccept; ++S) {
      TokenId PT = M.Conts[M.AcceptCont[S]].PushTok;
      if (CompiledParser::metaTok(M.AccMeta[S]) == CompiledParser::MetaNoTok &&
          PT != NoToken) {
        M.AccMeta[S] = (M.AccMeta[S] & 0x0000ffffffffffffULL) |
                       (uint64_t(static_cast<uint32_t>(PT)) << 48);
        return true;
      }
    }
    return false;
  });
  Add("AccNtMeta token set", [](CompiledParser &M) {
    if (M.NumAccept == 0)
      return false;
    M.AccNtMeta[0] &= 0x0000ffffffffffffULL; // MetaNoTok (0xffff) -> 0
    return true;
  });

  // Packed pools and the op pool.
  Add("PackedPool ActBit flip", [](CompiledParser &M) {
    if (M.PackedPool.empty())
      return false;
    M.PackedPool[0] ^= CompiledParser::ActBit;
    return true;
  });
  Add("PackedPool nt swapped", [](CompiledParser &M) {
    if (M.Nts.size() < 2)
      return false;
    for (uint32_t &E : M.PackedPool)
      if (!(E & CompiledParser::ActBit)) {
        NtId N = CompiledParser::packedNt(E);
        E = M.packNt(static_cast<NtId>((N + 1) % M.Nts.size()));
        return true;
      }
    return false;
  });
  Add("NtPool nt swapped", [](CompiledParser &M) {
    if (M.NtPool.empty() || M.Nts.size() < 2)
      return false;
    NtId N = CompiledParser::packedNt(M.NtPool[0]);
    M.NtPool[0] = M.packNt(static_cast<NtId>((N + 1) % M.Nts.size()));
    return true;
  });
  Add("OpPool kind invalid", [](CompiledParser &M) {
    if (M.OpPool.empty())
      return false;
    M.OpPool[0].K = 200;
    return true;
  });
  Add("OpPool kind nop", [](CompiledParser &M) {
    if (M.OpPool.empty())
      return false;
    M.OpPool[0].K = MicroOp::MNop;
    return true;
  });
  Add("OpPool arity+1", [](CompiledParser &M) {
    if (M.OpPool.empty())
      return false;
    ++M.OpPool[0].Arity;
    return true;
  });
  Add("OpPool selector==arity", [](CompiledParser &M) {
    for (MicroOp &Op : M.OpPool)
      switch (Op.K) {
      case MicroOp::MSelect:
      case MicroOp::MAddImm:
      case MicroOp::MTokInt:
      case MicroOp::MAddArgs:
      case MicroOp::MMaxAcc:
        Op.Sel = static_cast<int16_t>(Op.Arity);
        return true;
      default:
        break;
      }
    return false;
  });
  Add("OpPool slow imm+1", [](CompiledParser &M) {
    for (MicroOp &Op : M.OpPool)
      if (Op.K == MicroOp::MSlow) {
        ++Op.Imm;
        return true;
      }
    return false;
  });
  Add("OpActs redirected", [](CompiledParser &M) {
    if (M.Actions->size() < 2)
      return false;
    for (size_t I = 0; I < M.OpPool.size(); ++I)
      if (M.OpPool[I].K == MicroOp::MSlow) {
        M.OpActs[I] = static_cast<ActionId>((M.OpActs[I] + 1) %
                                            M.Actions->size());
        return true;
      }
    return false;
  });

  // ε-chains and their compiled programs.
  Add("EpsChain extended", [](CompiledParser &M) {
    for (std::vector<ActionId> &Ch : M.EpsChains)
      if (!Ch.empty()) {
        Ch.push_back(Ch[0]);
        return true;
      }
    return false;
  });
  Add("EpsProgram off+1", [](CompiledParser &M) {
    for (CompiledParser::EpsProgram &P : M.EpsPrograms)
      if (P.K == CompiledParser::EpsProgram::Ops && P.Len > 0) {
        ++P.Off;
        return true;
      }
    return false;
  });
  Add("EpsProgram maxgrow+1", [](CompiledParser &M) {
    if (M.EpsPrograms.empty())
      return false;
    ++M.EpsPrograms[0].MaxGrow;
    return true;
  });
  Add("EpsProgram kind flipped", [](CompiledParser &M) {
    if (M.EpsPrograms.empty())
      return false;
    CompiledParser::EpsProgram &P = M.EpsPrograms[0];
    P.K = P.K == CompiledParser::EpsProgram::Unit
                 ? CompiledParser::EpsProgram::Ops
                 : CompiledParser::EpsProgram::Unit;
    return true;
  });
  Add("EpsOps flipped", [](CompiledParser &M) {
    if (M.EpsOps.empty())
      return false;
    ++M.EpsOps[0];
    return true;
  });

  // Nonterminal directory and claims.
  Add("NtInfo start out-of-range", [](CompiledParser &M) {
    if (M.Nts.empty())
      return false;
    M.Nts[0].StartState = M.numStates();
    return true;
  });
  Add("NtInfo start clash", [](CompiledParser &M) {
    for (size_t A = 0; A < M.Nts.size(); ++A)
      for (size_t B = A + 1; B < M.Nts.size(); ++B)
        if (M.Nts[A].StartState != M.Nts[B].StartState) {
          M.Nts[A].StartState = M.Nts[B].StartState;
          return true;
        }
    return false;
  });
  Add("NtInfo epschain out-of-range", [](CompiledParser &M) {
    if (M.Nts.empty())
      return false;
    M.Nts[0].EpsChain = static_cast<int32_t>(M.EpsChains.size());
    return true;
  });
  Add("ValueFree claimed on start", [](CompiledParser &M) {
    M.Nts[M.Start].ValueFree = true;
    return true;
  });
  Add("ValueFree dropped", [](CompiledParser &M) {
    for (CompiledParser::NtInfo &N : M.Nts)
      if (N.ValueFree) {
        N.ValueFree = false;
        return true;
      }
    return false;
  });
  Add("SkipState clash", [](CompiledParser &M) {
    M.SkipState = M.Nts[M.Start].StartState;
    return true;
  });

  // Skip sets (every state's set is checked for self-loop exactness).
  Add("Skip bit dropped", [](CompiledParser &M) {
    for (SkipSet &S : M.Skip)
      if (dropOneBit(S))
        return true;
    return false;
  });
  Add("Skip range corrupted", [](CompiledParser &M) {
    for (SkipSet &S : M.Skip)
      if (S.NumRanges > 0) {
        ++S.Lo[0];
        return true;
      }
    return false;
  });

  // Continuations.
  Add("Cont tailoff out-of-range", [](CompiledParser &M) {
    for (CompiledParser::Cont &K : M.Conts)
      if (K.TailLen > 0) {
        K.TailOff = static_cast<uint32_t>(M.TailPool.size());
        return true;
      }
    return false;
  });
  Add("Cont taillen+1", [](CompiledParser &M) {
    if (M.Conts.empty())
      return false;
    ++M.Conts[0].TailLen;
    return true;
  });
  Add("Cont pushtok flipped", [](CompiledParser &M) {
    // Only meaningful where an accepting state's metadata still
    // materializes the token: flipping PushTok breaks that agreement.
    for (int32_t S = 0; S < M.NumAccept; ++S) {
      int32_t A = M.AcceptCont[S];
      if (CompiledParser::metaTok(M.AccMeta[S]) != CompiledParser::MetaNoTok &&
          M.Conts[A].PushTok != NoToken) {
        ++M.Conts[A].PushTok;
        return true;
      }
    }
    return false;
  });

  // Panic-mode sync tables.
  Add("Sync bit added", [](CompiledParser &M) {
    for (CompiledParser::SyncSpec &SS : M.SyncSpecs)
      if (SS.HasSync) {
        for (int B = 0; B < 256; ++B)
          if (!SS.Sync.test(static_cast<unsigned char>(B))) {
            SS.Sync.set(static_cast<unsigned char>(B));
            return true;
          }
      }
    return false;
  });
  Add("NotSync bit dropped", [](CompiledParser &M) {
    for (CompiledParser::SyncSpec &SS : M.SyncSpecs)
      if (SS.HasSync && dropOneBit(SS.NotSync))
        return true;
    return false;
  });
  Add("HasSync flipped", [](CompiledParser &M) {
    if (M.SyncSpecs.empty())
      return false;
    M.SyncSpecs[0].HasSync = !M.SyncSpecs[0].HasSync;
    return true;
  });
  Add("Sync range corrupted", [](CompiledParser &M) {
    for (CompiledParser::SyncSpec &SS : M.SyncSpecs)
      if (SS.HasSync && SS.Sync.NumRanges > 0) {
        ++SS.Sync.Lo[0];
        return true;
      }
    return false;
  });
  Add("Sync seq bogus", [](CompiledParser &M) {
    for (CompiledParser::SyncSpec &SS : M.SyncSpecs)
      if (SS.HasSync) {
        SS.Seqs.push_back("ZZZZZ"); // longer than MaxSeqLen
        return true;
      }
    return false;
  });
  Add("SeqOnly stray byte", [](CompiledParser &M) {
    for (CompiledParser::SyncSpec &SS : M.SyncSpecs)
      if (SS.HasSync) {
        for (int B = 0; B < 256; ++B)
          if (!SS.Sync.test(static_cast<unsigned char>(B))) {
            SS.SeqOnly.set(static_cast<unsigned char>(B));
            return true;
          }
      }
    return false;
  });

  return Ms;
}

std::vector<LexerMutation> lexerMutations() {
  using P = VerifyTestPeer;
  std::vector<LexerMutation> Ms;
  auto Add = [&](const char *Name, std::function<bool(CompiledLexer &)> Fn) {
    Ms.push_back({Name, std::move(Fn)});
  };
  Add("lexer NumTerm+1",
      [](CompiledLexer &L) { ++P::numTerm(L); return true; });
  Add("lexer NumPureRun-1", [](CompiledLexer &L) {
    if (P::numPureRun(L) == 0)
      return false;
    --P::numPureRun(L);
    return true;
  });
  Add("lexer NumAccept+1",
      [](CompiledLexer &L) { ++P::numAccept(L); return true; });
  Add("lexer Accept cleared", [](CompiledLexer &L) {
    if (P::numAccept(L) == 0)
      return false;
    P::accept(L)[0] = -1;
    return true;
  });
  Add("lexer Accept out-of-range", [](CompiledLexer &L) {
    if (P::numAccept(L) == 0)
      return false;
    P::accept(L)[0] = static_cast<int32_t>(P::toks(L).size());
    return true;
  });
  Add("lexer Trans16 flip", [](CompiledLexer &L) {
    if (P::trans16(L).empty())
      return false;
    P::trans16(L)[0] = P::trans16(L)[0] < 0 ? 0 : int16_t(-1);
    return true;
  });
  Add("lexer Trans8 flip", [](CompiledLexer &L) {
    if (P::trans8(L).empty())
      return false;
    P::trans8(L)[0] = P::trans8(L)[0] == 0xff ? 0 : 0xff;
    return true;
  });
  Add("lexer Alphabet flip", [](CompiledLexer &L) {
    if (P::alpha(L).NumClasses < 2)
      return false;
    P::alpha(L).Map[0] = static_cast<uint8_t>((P::alpha(L).Map[0] + 1) %
                                              P::alpha(L).NumClasses);
    return true;
  });
  Add("lexer Skip bit dropped", [](CompiledLexer &L) {
    for (SkipSet &S : P::skip(L))
      if (dropOneBit(S))
        return true;
    return false;
  });
  Add("lexer Start out-of-range", [](CompiledLexer &L) {
    P::start(L) = L.numStates();
    return true;
  });
  return Ms;
}

struct Tally {
  size_t Applied = 0;
  size_t Detected = 0;
  std::vector<std::string> Missed;
};

void runParserMutations(const FlapParser &Base, const std::string &Sample,
                        Tally &T) {
  for (const ParserMutation &Mu : parserMutations()) {
    CompiledParser M = Base.M;
    if (!Mu.Apply(M))
      continue;
    ++T.Applied;
    VerifyOptions Opts;
    Opts.Lints = false;
    if (detected(verifyCompiledParser(M, Opts))) {
      ++T.Detected;
    } else {
      T.Missed.push_back(std::string(Base.Def->Name) + "/" + Mu.Name);
      // Zero-crash contract: a corruption the verifier passes must be
      // harmless to the engine. (A wrong *answer* is acceptable here —
      // a crash or sanitizer report is not.)
      (void)M.recognize(Sample);
    }
  }
}

void runLexerMutations(const FlapParser &Base, const std::string &Sample,
                       Tally &T) {
  CompiledLexer Clean(*Base.Def->Re, Base.Canon);
  for (const LexerMutation &Mu : lexerMutations()) {
    CompiledLexer L = Clean;
    if (!Mu.Apply(L))
      continue;
    ++T.Applied;
    VerifyOptions Opts;
    Opts.Lints = false;
    if (detected(verifyCompiledLexer(L, Opts))) {
      ++T.Detected;
    } else {
      T.Missed.push_back(std::string(Base.Def->Name) + "/" + Mu.Name);
      (void)L.lexAll(Sample);
    }
  }
}

TEST(VerifyTest, CleanTablesVerifyCleanly) {
  for (auto &Def : allBenchmarkGrammars()) {
    auto P = compileFlap(Def);
    ASSERT_TRUE(P.ok()) << Def->Name << ": " << P.error();
    VerifyOptions Opts;
    Opts.Lints = false;
    VerifyReport PR = verifyFlapParser(P.value(), Opts);
    EXPECT_TRUE(PR.ok() && !detected(PR))
        << Def->Name << " parser: " << PR.summary();
    CompiledLexer L(*Def->Re, P.value().Canon);
    VerifyReport LR = verifyCompiledLexer(L, Opts);
    EXPECT_TRUE(LR.ok() && !detected(LR))
        << Def->Name << " lexer: " << LR.summary();
  }
}

TEST(VerifyTest, SingleFieldCorruptionsAreFlaggedBeforeEngineEntry) {
  Tally T;
  for (auto &Def : allBenchmarkGrammars()) {
    auto P = compileFlap(Def);
    ASSERT_TRUE(P.ok()) << Def->Name << ": " << P.error();
    std::string Sample = sampleInput(Def->Name);
    runParserMutations(P.value(), Sample, T);
    runLexerMutations(P.value(), Sample, T);
  }
  ASSERT_GT(T.Applied, 0u);
  for (const std::string &Miss : T.Missed)
    std::printf("verifier miss (engine survived): %s\n", Miss.c_str());
  double Ratio = double(T.Detected) / double(T.Applied);
  std::printf("mutation detection: %zu/%zu (%.1f%%)\n", T.Detected, T.Applied,
              100.0 * Ratio);
  EXPECT_GE(Ratio, 0.95) << T.Missed.size() << " undetected corruptions";
}

/// Structured findings must carry their anchors: the detection above is
/// only actionable if a finding names the component, field, and state
/// or nonterminal it fired on.
TEST(VerifyTest, FindingsCarryStructuredAnchors) {
  auto P = compileFlap(makeJsonGrammar());
  ASSERT_TRUE(P.ok());
  CompiledParser M = P.value().M;
  ASSERT_GT(M.NumAccept, 0);
  M.AcceptCont[0] = -1;
  VerifyOptions Opts;
  Opts.Lints = false;
  VerifyReport R = verifyCompiledParser(M, Opts);
  ASSERT_FALSE(R.ok());
  bool Anchored = false;
  for (const VerifyFinding &F : R.Findings)
    if (F.Sev == VerifyFinding::Severity::Error && F.Component == "parser" &&
        !F.Field.empty() && (F.State >= 0 || F.Nt >= 0))
      Anchored = true;
  EXPECT_TRUE(Anchored) << R.summary();
}

} // namespace
