//===- tests/NormalizeTest.cpp - DGNF normalization tests ---------------------===//
//
// Part of flap-cpp, a C++ reproduction of "flap: A Deterministic Parser
// with Fused Lexing" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "cfe/Combinators.h"
#include "core/Expand.h"
#include "core/Normalize.h"
#include "core/Simplify.h"
#include "core/Validate.h"
#include "grammars/Grammars.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace flap;

namespace {

class NormalizeTest : public ::testing::Test {
protected:
  NormalizeTest() : L(Toks) {
    Ta = Toks.intern("a");
    Tb = Toks.intern("b");
    Tc = Toks.intern("c");
    Te = Toks.intern("e");
  }

  Grammar norm(Px P, NormalizeOptions Opts = {}) {
    auto TC = L.check(P);
    EXPECT_TRUE(TC.ok()) << (TC.ok() ? "" : TC.error());
    auto G = normalize(L.Arena, P.Id, Opts);
    EXPECT_TRUE(G.ok()) << (G.ok() ? "" : G.error());
    return G.take();
  }

  TokenSet Toks;
  Lang L;
  TokenId Ta, Tb, Tc, Te;
};

//===----------------------------------------------------------------------===//
// Base cases (Fig. 4 rules)
//===----------------------------------------------------------------------===//

TEST_F(NormalizeTest, Epsilon) {
  Grammar G = norm(L.eps());
  EXPECT_EQ(G.numNts(), 1u);
  ASSERT_EQ(G.prodsOf(G.Start).size(), 1u);
  EXPECT_TRUE(G.prodsOf(G.Start)[0].isEps());
}

TEST_F(NormalizeTest, Token) {
  Grammar G = norm(L.tok(Ta));
  ASSERT_EQ(G.prodsOf(G.Start).size(), 1u);
  EXPECT_TRUE(G.prodsOf(G.Start)[0].isTok());
  EXPECT_EQ(G.prodsOf(G.Start)[0].Tok, Ta);
  EXPECT_TRUE(G.prodsOf(G.Start)[0].Tail.empty());
}

TEST_F(NormalizeTest, Bottom) {
  Grammar G = norm(L.bot());
  EXPECT_EQ(G.prodsOf(G.Start).size(), 0u);
}

TEST_F(NormalizeTest, Seq) {
  // a·b: start → a n, n → b.
  Grammar G = norm(L.seq(L.tok(Ta), L.tok(Tb)));
  ASSERT_EQ(G.prodsOf(G.Start).size(), 1u);
  const Production &P = G.prodsOf(G.Start)[0];
  EXPECT_EQ(P.Tok, Ta);
  ASSERT_EQ(P.Tail.size(), 1u);
  ASSERT_TRUE(P.Tail[0].isNt());
  const Production &Q = G.prodsOf(P.Tail[0].Idx)[0];
  EXPECT_EQ(Q.Tok, Tb);
}

TEST_F(NormalizeTest, Alt) {
  Grammar G = norm(L.alt(L.tok(Ta), L.tok(Tb)));
  ASSERT_EQ(G.prodsOf(G.Start).size(), 2u);
  std::vector<TokenId> Heads = {G.prodsOf(G.Start)[0].Tok,
                                G.prodsOf(G.Start)[1].Tok};
  std::sort(Heads.begin(), Heads.end());
  EXPECT_EQ(Heads, (std::vector<TokenId>{Ta, Tb}));
}

TEST_F(NormalizeTest, FixStar) {
  // a* = μx. ε | a·x normalizes to x → ε, x → a x.
  Grammar G = norm(
      L.fix([&](Px X) { return L.alt(L.eps(), L.seq(L.tok(Ta), X)); }));
  ASSERT_EQ(G.prodsOf(G.Start).size(), 2u);
  EXPECT_NE(G.epsProd(G.Start), nullptr);
  const Production *P = G.tokProd(G.Start, Ta);
  ASSERT_NE(P, nullptr);
  ASSERT_EQ(P->Tail.size(), 1u);
  EXPECT_EQ(P->Tail[0].Idx, G.Start); // ties the knot back to itself
}

//===----------------------------------------------------------------------===//
// The paper's running example (Fig. 3d / Fig. 5 / appendix A)
//===----------------------------------------------------------------------===//

TEST_F(NormalizeTest, SexpMatchesPaperFig3d) {
  TokenId Lp = Toks.intern("lpar"), Rp = Toks.intern("rpar"),
          At = Toks.intern("atom");
  Px Sexp = L.fix([&](Px Self) {
    Px Sexps = L.fix(
        [&](Px Ss) { return L.alt(L.eps(), L.seq(Self, Ss)); });
    return L.alt(L.seq(L.seq(L.tok(Lp), Sexps), L.tok(Rp)), L.tok(At));
  });
  Grammar G = norm(Sexp);

  // Fig. 3d: 3 nonterminals (sexp, sexps, rpar), 6 productions.
  EXPECT_EQ(G.numNts(), 3u);
  EXPECT_EQ(G.numProductions(), 6u);

  // sexp ::= lpar sexps rpar | atom
  ASSERT_EQ(G.prodsOf(G.Start).size(), 2u);
  const Production *PL = G.tokProd(G.Start, Lp);
  ASSERT_NE(PL, nullptr);
  ASSERT_EQ(PL->Tail.size(), 2u);
  NtId Sexps = PL->Tail[0].Idx, Rpar = PL->Tail[1].Idx;
  EXPECT_NE(G.tokProd(G.Start, At), nullptr);

  // rpar ::= rpar
  ASSERT_EQ(G.prodsOf(Rpar).size(), 1u);
  EXPECT_EQ(G.prodsOf(Rpar)[0].Tok, Rp);

  // sexps ::= lpar sexps rpar sexps | atom sexps | ε
  ASSERT_EQ(G.prodsOf(Sexps).size(), 3u);
  EXPECT_NE(G.epsProd(Sexps), nullptr);
  const Production *SL = G.tokProd(Sexps, Lp);
  ASSERT_NE(SL, nullptr);
  std::vector<NtId> TailNts;
  for (const Sym &S : SL->Tail)
    if (S.isNt())
      TailNts.push_back(S.Idx);
  EXPECT_EQ(TailNts, (std::vector<NtId>{Sexps, Rpar, Sexps}));
  const Production *SA = G.tokProd(Sexps, At);
  ASSERT_NE(SA, nullptr);

  EXPECT_TRUE(validateDgnf(G, Toks).ok());
}

TEST_F(NormalizeTest, WithoutAliasCollapseKeepsUnitNts) {
  // Appendix A: without the optimization the derivation retains the
  // intermediate n3 (an alias of sexps), giving a bigger grammar.
  TokenId Lp = Toks.intern("lpar"), Rp = Toks.intern("rpar"),
          At = Toks.intern("atom");
  Px Sexp = L.fix([&](Px Self) {
    Px Sexps = L.fix(
        [&](Px Ss) { return L.alt(L.eps(), L.seq(Self, Ss)); });
    return L.alt(L.seq(L.seq(L.tok(Lp), Sexps), L.tok(Rp)), L.tok(At));
  });
  NormalizeOptions Opts;
  Opts.CollapseVarAliases = false;
  Grammar G = norm(Sexp, Opts);
  EXPECT_GT(G.numNts(), 3u);
  // Still DGNF and still the same language.
  EXPECT_TRUE(validateDgnf(G, Toks).ok()) << G.str(Toks);
}

//===----------------------------------------------------------------------===//
// §2.5 examples (1)-(4): the DGNF validator classifies them
//===----------------------------------------------------------------------===//

Grammar example1() {
  // n ::= a n1 n2 | b ; n1 ::= c ; n2 ::= e  — in DGNF.
  Grammar G;
  NtId N = G.addNt("n"), N1 = G.addNt("n1"), N2 = G.addNt("n2");
  G.Start = N;
  G.Prods[N].push_back(
      Production::tok(0, {Sym::nt(N1), Sym::nt(N2)}));
  G.Prods[N].push_back(Production::tok(1));
  G.Prods[N1].push_back(Production::tok(2));
  G.Prods[N2].push_back(Production::tok(3));
  return G;
}

TEST(DgnfExamplesTest, Example1IsDgnf) {
  TokenSet Toks;
  for (const char *N : {"a", "b", "c", "e"})
    Toks.intern(N);
  EXPECT_TRUE(validateDgnf(example1(), Toks).ok());
}

TEST(DgnfExamplesTest, Example3ViolatesDeterminism) {
  // n ::= a n1 | a n2 — two productions on 'a'.
  TokenSet Toks;
  TokenId Ta = Toks.intern("a");
  Toks.intern("c");
  Toks.intern("e");
  Grammar G;
  NtId N = G.addNt("n"), N1 = G.addNt("n1"), N2 = G.addNt("n2");
  G.Start = N;
  G.Prods[N].push_back(Production::tok(Ta, {Sym::nt(N1)}));
  G.Prods[N].push_back(Production::tok(Ta, {Sym::nt(N2)}));
  G.Prods[N1].push_back(Production::tok(1));
  G.Prods[N2].push_back(Production::tok(2));
  Status S = validateDgnf(G, Toks);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.error().find("Determinism"), std::string::npos);
}

TEST(DgnfExamplesTest, Example4ViolatesGuardedEps) {
  // n ::= a n1 n2 ; n1 ::= c | ε ; n2 ::= c — the subtle case.
  TokenSet Toks;
  TokenId Ta = Toks.intern("a"), Tc = Toks.intern("c");
  Grammar G;
  NtId N = G.addNt("n"), N1 = G.addNt("n1"), N2 = G.addNt("n2");
  G.Start = N;
  G.Prods[N].push_back(Production::tok(Ta, {Sym::nt(N1), Sym::nt(N2)}));
  G.Prods[N1].push_back(Production::tok(Tc));
  G.Prods[N1].push_back(Production::eps());
  G.Prods[N2].push_back(Production::tok(Tc));
  Status S = validateDgnf(G, Toks);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.error().find("Guarded"), std::string::npos);
}

TEST(DgnfExamplesTest, GuardedEpsThroughNesting) {
  // The follower relation must see *nested* adjacency: n ::= a m n2,
  // m ::= b n1, n1 ::= ε | c, n2 ::= c. After expanding m, n1 is
  // adjacent to n2 — same conflict as example (4), one level deep.
  TokenSet Toks;
  TokenId Ta = Toks.intern("a"), Tb = Toks.intern("b"),
          Tc = Toks.intern("c");
  Grammar G;
  NtId N = G.addNt("n"), M = G.addNt("m"), N1 = G.addNt("n1"),
       N2 = G.addNt("n2");
  G.Start = N;
  G.Prods[N].push_back(Production::tok(Ta, {Sym::nt(M), Sym::nt(N2)}));
  G.Prods[M].push_back(Production::tok(Tb, {Sym::nt(N1)}));
  G.Prods[N1].push_back(Production::eps());
  G.Prods[N1].push_back(Production::tok(Tc));
  G.Prods[N2].push_back(Production::tok(Tc));
  Status S = validateDgnf(G, Toks);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.error().find("Guarded"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Theorem 3.7: normalization of well-typed expressions yields DGNF
//===----------------------------------------------------------------------===//

TEST(Theorem37Test, AllBenchmarkGrammarsNormalizeToDgnf) {
  for (const auto &Def : allBenchmarkGrammars()) {
    auto TC = Def->L->check(Def->Root);
    ASSERT_TRUE(TC.ok()) << Def->Name << ": " << TC.error();
    auto G = normalize(Def->L->Arena, Def->Root.Id);
    ASSERT_TRUE(G.ok()) << Def->Name << ": " << G.error();
    EXPECT_TRUE(validateDgnf(*G, *Def->Toks).ok())
        << Def->Name << ": " << validateDgnf(*G, *Def->Toks).error();
  }
}

//===----------------------------------------------------------------------===//
// Theorem 3.8 (soundness) and Theorem 3.1 (unique derivations), bounded
//===----------------------------------------------------------------------===//

class SoundnessTest : public NormalizeTest {
protected:
  /// Checks L(normalize(g)) == ⟦g⟧ up to MaxLen, and that every word has
  /// exactly one derivation (Theorem 3.1).
  void checkSoundness(Px P, unsigned MaxLen) {
    Grammar G = norm(P);
    ASSERT_TRUE(validateDgnf(G, Toks).ok())
        << validateDgnf(G, Toks).error() << "\n"
        << G.str(Toks);
    WordCounts Expanded;
    ASSERT_TRUE(expandWords(G, MaxLen, Expanded));
    auto Denoted = denotationWords(L.Arena, P.Id, MaxLen);
    std::vector<std::vector<TokenId>> ExpandedWords;
    for (const auto &[W, Count] : Expanded) {
      EXPECT_EQ(Count, 1u) << "word has multiple derivations";
      ExpandedWords.push_back(W);
    }
    EXPECT_EQ(ExpandedWords, Denoted);
  }
};

TEST_F(SoundnessTest, Star) {
  checkSoundness(
      L.fix([&](Px X) { return L.alt(L.eps(), L.seq(L.tok(Ta), X)); }), 6);
}

TEST_F(SoundnessTest, SeqAltMix) {
  checkSoundness(L.seq(L.alt(L.tok(Ta), L.tok(Tb)),
                       L.alt(L.tok(Tc), L.eps())),
                 4);
}

TEST_F(SoundnessTest, Sexp) {
  TokenId Lp = Toks.intern("lpar"), Rp = Toks.intern("rpar"),
          At = Toks.intern("atom");
  Px Sexp = L.fix([&](Px Self) {
    Px Sexps = L.fix(
        [&](Px Ss) { return L.alt(L.eps(), L.seq(Self, Ss)); });
    return L.alt(L.seq(L.seq(L.tok(Lp), Sexps), L.tok(Rp)), L.tok(At));
  });
  checkSoundness(Sexp, 7);
}

TEST_F(SoundnessTest, NestedFix) {
  // μx. a·(μy. ε | b·y)·c | e — inner star under an outer fix.
  Px P = L.fix([&](Px X) {
    Px Inner =
        L.fix([&](Px Y) { return L.alt(L.eps(), L.seq(L.tok(Tb), Y)); });
    return L.alt(L.seq(L.seq(L.tok(Ta), Inner), L.tok(Tc)), L.tok(Te));
  });
  checkSoundness(P, 6);
}

TEST_F(SoundnessTest, MutualNestingUsesOuterVar) {
  // The paper's tricky case: the inner fix body references the outer
  // variable (like sexps referencing sexp).
  Px P = L.fix([&](Px X) {
    Px Inner = L.fix(
        [&](Px Y) { return L.alt(L.eps(), L.seq(X, Y)); });
    return L.alt(L.seq(L.seq(L.tok(Ta), Inner), L.tok(Tb)), L.tok(Tc));
  });
  checkSoundness(P, 6);
}

TEST_F(SoundnessTest, BottomFix) {
  // μx. a·x — empty language; expansion yields nothing.
  Px P = L.fix([&](Px X) { return L.seq(L.tok(Ta), X); });
  Grammar G = norm(P);
  WordCounts W;
  ASSERT_TRUE(expandWords(G, 8, W));
  EXPECT_TRUE(W.empty());
  EXPECT_TRUE(denotationWords(L.Arena, P.Id, 8).empty());
}

TEST_F(NormalizeTest, TrimRemovesUnreachable) {
  Grammar G;
  NtId S = G.addNt("s"), U = G.addNt("unused");
  G.Start = S;
  G.Prods[S].push_back(Production::tok(0));
  G.Prods[U].push_back(Production::tok(1));
  Grammar T = trimUnreachable(G);
  EXPECT_EQ(T.numNts(), 1u);
  EXPECT_EQ(T.numProductions(), 1u);
  EXPECT_EQ(T.Names[T.Start], "s");
}

} // namespace

namespace {

TEST(ExpansionCountTest, AmbiguousGrammarHasMultipleDerivations) {
  // n ::= a n1 | a n2 ; n1 ::= b ; n2 ::= b — "ab" derives two ways.
  // (Not DGNF; expandWords counts derivations regardless, which is how
  // Theorem 3.1 tests detect ambiguity.)
  TokenSet Toks;
  TokenId Ta = Toks.intern("a"), Tb = Toks.intern("b");
  Grammar G;
  NtId N = G.addNt("n"), N1 = G.addNt("n1"), N2 = G.addNt("n2");
  G.Start = N;
  G.Prods[N].push_back(Production::tok(Ta, {Sym::nt(N1)}));
  G.Prods[N].push_back(Production::tok(Ta, {Sym::nt(N2)}));
  G.Prods[N1].push_back(Production::tok(Tb));
  G.Prods[N2].push_back(Production::tok(Tb));
  WordCounts W;
  ASSERT_TRUE(expandWords(G, 3, W));
  ASSERT_EQ(W.size(), 1u);
  std::vector<TokenId> Ab = {Ta, Tb};
  EXPECT_EQ(W[Ab], 2u);
}

TEST(ExpansionCountTest, FrontierCapReportsIncomplete) {
  // a* with a huge length bound under a tiny form cap: must report
  // incompleteness rather than silently truncating.
  TokenSet Toks;
  TokenId Ta = Toks.intern("a");
  Grammar G;
  NtId N = G.addNt("n");
  G.Start = N;
  G.Prods[N].push_back(Production::eps());
  G.Prods[N].push_back(Production::tok(Ta, {Sym::nt(N)}));
  WordCounts W;
  EXPECT_FALSE(expandWords(G, 60, W, /*MaxForms=*/8));
  WordCounts W2;
  EXPECT_TRUE(expandWords(G, 6, W2));
  EXPECT_EQ(W2.size(), 7u); // ε, a, aa, ..., a^6
}

TEST(NormalizeSharedTest, SharedFixNormalizesOnce) {
  // The regression behind the normalization memo: one μ-node reached
  // through two parents must keep Determinism.
  TokenSet Toks;
  Lang L(Toks);
  TokenId Ta = Toks.intern("a"), Tb = Toks.intern("b"),
          Tc = Toks.intern("c");
  Px Star = L.fix([&](Px X) {
    return L.alt(L.eps(), L.seq(L.tok(Ta), X));
  });
  // Both branches embed the *same* Star node after distinct guards.
  Px Root = L.alt(L.seq(L.tok(Tb), Star), L.seq(L.tok(Tc), Star));
  ASSERT_TRUE(L.check(Root).ok());
  auto G = normalize(L.Arena, Root.Id);
  ASSERT_TRUE(G.ok()) << G.error();
  EXPECT_TRUE(validateDgnf(*G, Toks).ok())
      << validateDgnf(*G, Toks).error();
  // The star subgrammar appears once (shared), not twice.
  WordCounts W;
  ASSERT_TRUE(expandWords(*G, 4, W));
  for (const auto &[Word, Count] : W)
    EXPECT_EQ(Count, 1u);
}

} // namespace
