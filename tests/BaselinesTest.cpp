//===- tests/BaselinesTest.cpp - Baseline engine tests ------------------------===//
//
// Part of flap-cpp, a C++ reproduction of "flap: A Deterministic Parser
// with Fused Lexing" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "baselines/Bnf.h"
#include "baselines/Lalr.h"
#include "baselines/TokenEngines.h"
#include "engine/Pipeline.h"
#include "engine/Unfused.h"
#include "grammars/Grammars.h"
#include "lexer/CompiledLexer.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace flap;

namespace {

//===----------------------------------------------------------------------===//
// BNF lowering
//===----------------------------------------------------------------------===//

TEST(BnfTest, LowersSexp) {
  auto Def = makeSexpGrammar();
  auto G = lowerToBnf(Def->L->Arena, Def->Root.Id);
  ASSERT_TRUE(G.ok()) << G.error();
  EXPECT_GT(G->Rules.size(), 5u);
  // Every rule's RHS symbols are in range.
  for (const BnfRule &R : G->Rules) {
    EXPECT_LT(R.Lhs, G->numNts());
    for (const BnfSym &S : R.Rhs)
      if (!S.IsTok)
        EXPECT_LT(S.Idx, G->numNts());
  }
}

TEST(BnfTest, AllBenchmarksLower) {
  for (const auto &Def : allBenchmarkGrammars()) {
    auto G = lowerToBnf(Def->L->Arena, Def->Root.Id);
    EXPECT_TRUE(G.ok()) << Def->Name << ": " << G.error();
  }
}

//===----------------------------------------------------------------------===//
// LALR construction
//===----------------------------------------------------------------------===//

TEST(LalrTest, BuildsForAllBenchmarks) {
  // LL(1) ⊆ LALR(1): every benchmark grammar must build conflict-free.
  for (const auto &Def : allBenchmarkGrammars()) {
    auto G = lowerToBnf(Def->L->Arena, Def->Root.Id);
    ASSERT_TRUE(G.ok()) << Def->Name;
    auto P = LalrParser::build(*G, Def->Toks->size(), Def->Toks.get());
    ASSERT_TRUE(P.ok()) << Def->Name << ": " << P.error();
    EXPECT_GT(P->numStates(), 2u) << Def->Name;
  }
}

TEST(LalrTest, DetectsAmbiguity) {
  // S → a S | S a | a is ambiguous: must report a conflict.
  BnfGrammar G;
  G.NtNames = {"S"};
  G.RulesOf.resize(1);
  G.Start = 0;
  auto AddRule = [&](std::vector<BnfSym> Rhs) {
    BnfRule R;
    R.Lhs = 0;
    R.Rhs = std::move(Rhs);
    R.RhsWidth = static_cast<int>(R.Rhs.size());
    G.RulesOf[0].push_back(static_cast<uint32_t>(G.Rules.size()));
    G.Rules.push_back(std::move(R));
  };
  AddRule({BnfSym::tok(0), BnfSym::nt(0)});
  AddRule({BnfSym::nt(0), BnfSym::tok(0)});
  AddRule({BnfSym::tok(0)});
  auto P = LalrParser::build(G, 1);
  ASSERT_FALSE(P.ok());
  EXPECT_NE(P.error().find("conflict"), std::string::npos);
}

TEST(LalrTest, ParsesArithToken) {
  // A tiny hand-rolled LR exercise: E → E? no — use lowered sexp and a
  // couple of concrete sentences.
  auto Def = makeSexpGrammar();
  auto G = lowerToBnf(Def->L->Arena, Def->Root.Id);
  ASSERT_TRUE(G.ok());
  auto P = LalrParser::build(*G, Def->Toks->size(), Def->Toks.get());
  ASSERT_TRUE(P.ok()) << P.error();

  auto Canon = Def->Lexer->canonicalize();
  ASSERT_TRUE(Canon.ok());
  CompiledLexer Lex(*Def->Re, *Canon);

  auto Toks = Lex.lexAll("(a (b c) d)");
  ASSERT_TRUE(Toks.ok());
  auto R = P->parse(*Toks, Def->L->Actions, "(a (b c) d)");
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R->asInt(), 4);

  auto Bad = Lex.lexAll("(a (b c) d");
  ASSERT_TRUE(Bad.ok());
  EXPECT_FALSE(P->parse(*Bad, Def->L->Actions, "(a (b c) d").ok());
}

//===----------------------------------------------------------------------===//
// Cross-engine value agreement: flap vs every baseline
//===----------------------------------------------------------------------===//

class BaselineAgreementTest : public ::testing::TestWithParam<const char *> {
};

TEST_P(BaselineAgreementTest, AllSevenEnginesAgree) {
  std::string Name = GetParam();
  std::shared_ptr<GrammarDef> Def;
  for (auto &G : allBenchmarkGrammars())
    if (G->Name == Name)
      Def = G;
  ASSERT_NE(Def, nullptr);

  auto Flap = compileFlap(Def);
  ASSERT_TRUE(Flap.ok()) << Flap.error();
  auto Bnf = lowerToBnf(Def->L->Arena, Def->Root.Id);
  ASSERT_TRUE(Bnf.ok());
  auto Lalr = LalrParser::build(*Bnf, Def->Toks->size(), Def->Toks.get());
  ASSERT_TRUE(Lalr.ok()) << Lalr.error();
  CompiledLexer Lex(*Def->Re, Flap->Canon);
  TokenTables TT = buildTokenTables(Flap->G, Def->Toks->size());
  PartsStreamParser Parts(*Def->Re, Flap->Canon, Flap->G, Def->L->Actions,
                          Def->Toks->size());
  UnfusedParser Unf(*Def->Re, Flap->Canon, Flap->G, Def->L->Actions,
                    Def->Toks->size());

  auto Fresh = [&](std::shared_ptr<void> &C) -> void * {
    if (Def->NewCtx)
      C = Def->NewCtx();
    return C.get();
  };

  Workload W = genWorkload(Name, 31337, 15000);
  std::shared_ptr<void> C0, C1, C2, C3, C4, C5;
  auto RFlap = Flap->M.parse(W.Input, Fresh(C0));
  ASSERT_TRUE(RFlap.ok()) << RFlap.error();

  auto Toks = Lex.lexAll(W.Input);
  ASSERT_TRUE(Toks.ok());
  auto RLalr = Lalr->parse(*Toks, Def->L->Actions, W.Input, Fresh(C1));
  ASSERT_TRUE(RLalr.ok()) << Name << ": " << RLalr.error();
  EXPECT_EQ(*RFlap, *RLalr) << Name << " (lalr)";

  auto RRd = parseRdTokens(TT, Def->L->Actions, *Toks, W.Input, Fresh(C2));
  ASSERT_TRUE(RRd.ok()) << RRd.error();
  EXPECT_EQ(*RFlap, *RRd) << Name << " (rd)";

  auto RAsp =
      parseAspTokens(TT, Def->L->Actions, *Toks, W.Input, Fresh(C3));
  ASSERT_TRUE(RAsp.ok()) << RAsp.error();
  EXPECT_EQ(*RFlap, *RAsp) << Name << " (asp)";

  auto RParts = Parts.parse(W.Input, Fresh(C4));
  ASSERT_TRUE(RParts.ok()) << RParts.error();
  EXPECT_EQ(*RFlap, *RParts) << Name << " (parts)";

  auto RUnf = Unf.parse(W.Input, Fresh(C5));
  ASSERT_TRUE(RUnf.ok()) << RUnf.error();
  EXPECT_EQ(*RFlap, *RUnf) << Name << " (unfused)";

  if (W.HasExpected)
    EXPECT_EQ(*RFlap, W.Expected) << Name;
}

INSTANTIATE_TEST_SUITE_P(Grammars, BaselineAgreementTest,
                         ::testing::Values("sexp", "json", "csv", "pgn",
                                           "ppm", "arith"));

TEST_P(BaselineAgreementTest, BaselinesRejectWhatFlapRejects) {
  std::string Name = GetParam();
  std::shared_ptr<GrammarDef> Def;
  for (auto &G : allBenchmarkGrammars())
    if (G->Name == Name)
      Def = G;
  auto Flap = compileFlap(Def);
  ASSERT_TRUE(Flap.ok());
  auto Bnf = lowerToBnf(Def->L->Arena, Def->Root.Id);
  auto Lalr = LalrParser::build(*Bnf, Def->Toks->size(), Def->Toks.get());
  ASSERT_TRUE(Lalr.ok());
  CompiledLexer Lex(*Def->Re, Flap->Canon);
  TokenTables TT = buildTokenTables(Flap->G, Def->Toks->size());

  // Truncations of a valid workload: engines agree on the verdict.
  Workload W = genWorkload(Name, 5, 800);
  for (size_t Cut : {W.Input.size() / 3, W.Input.size() / 2,
                     W.Input.size() - 1}) {
    std::string In = W.Input.substr(0, Cut);
    std::shared_ptr<void> C0, C1, C2;
    auto Fresh = [&](std::shared_ptr<void> &C) -> void * {
      if (Def->NewCtx)
        C = Def->NewCtx();
      return C.get();
    };
    bool FlapOk = Flap->M.parse(In, Fresh(C0)).ok();
    auto Toks = Lex.lexAll(In);
    bool LalrOk =
        Toks.ok() &&
        Lalr->parse(*Toks, Def->L->Actions, In, Fresh(C1)).ok();
    bool RdOk =
        Toks.ok() &&
        parseRdTokens(TT, Def->L->Actions, *Toks, In, Fresh(C2)).ok();
    EXPECT_EQ(FlapOk, LalrOk) << Name << " cut " << Cut;
    EXPECT_EQ(FlapOk, RdOk) << Name << " cut " << Cut;
  }
}

} // namespace

namespace {

TEST_P(BaselineAgreementTest, RecognitionVariantsAgreeWithParse) {
  std::string Name = GetParam();
  std::shared_ptr<GrammarDef> Def;
  for (auto &G : allBenchmarkGrammars())
    if (G->Name == Name)
      Def = G;
  auto Flap = compileFlap(Def);
  ASSERT_TRUE(Flap.ok());
  auto Bnf = lowerToBnf(Def->L->Arena, Def->Root.Id);
  auto Lalr = LalrParser::build(*Bnf, Def->Toks->size(), Def->Toks.get());
  ASSERT_TRUE(Lalr.ok());
  CompiledLexer Lex(*Def->Re, Flap->Canon);
  TokenTables TT = buildTokenTables(Flap->G, Def->Toks->size());
  PartsStreamParser Parts(*Def->Re, Flap->Canon, Flap->G, Def->L->Actions,
                          Def->Toks->size());
  UnfusedParser Unf(*Def->Re, Flap->Canon, Flap->G, Def->L->Actions,
                    Def->Toks->size());

  // Valid workloads plus truncations: every recognizer must agree with
  // the full parser's verdict.
  Workload W = genWorkload(Name, 77, 4000);
  std::vector<std::string> Inputs = {W.Input, "", "!!",
                                     W.Input.substr(0, W.Input.size() / 2)};
  for (const std::string &In : Inputs) {
    std::shared_ptr<void> Ctx = Def->NewCtx ? Def->NewCtx() : nullptr;
    bool Expect = Flap->M.parse(In, Ctx.get()).ok();
    EXPECT_EQ(Flap->M.recognize(In), Expect) << Name;
    EXPECT_EQ(Unf.recognize(In), Expect) << Name;
    EXPECT_EQ(Parts.recognize(In), Expect) << Name;
    auto Toks = Lex.lexAll(In);
    bool LexOk = Toks.ok();
    EXPECT_EQ(LexOk && Lalr->recognize(*Toks), Expect) << Name;
    EXPECT_EQ(LexOk && recognizeRdTokens(TT, *Toks), Expect) << Name;
    EXPECT_EQ(LexOk && recognizeAspTokens(TT, *Toks), Expect) << Name;
  }
}

} // namespace
