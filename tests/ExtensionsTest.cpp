//===- tests/ExtensionsTest.cpp - §8 extension features ------------------------===//
//
// Part of flap-cpp, a C++ reproduction of "flap: A Deterministic Parser
// with Fused Lexing" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// Tests for the paper's §8 future-work features implemented here:
/// multiple entry points, chainl1/opt usability combinators, and the
/// expected-token diagnostics derived from machine states. Also covers
/// the >255-state int16 fallback path of the staged machine.
///
//===----------------------------------------------------------------------===//

#include "engine/Pipeline.h"
#include "grammars/Grammars.h"

#include <gtest/gtest.h>

using namespace flap;

namespace {

//===----------------------------------------------------------------------===//
// Multiple entry points (§8)
//===----------------------------------------------------------------------===//

TEST(MultiEntryTest, SharedMachineServesSeveralRoots) {
  auto Def = std::make_shared<GrammarDef>("multi");
  Lang &L = *Def->L;
  TokenId Num = Def->Lexer->rule("[0-9]+", "num");
  TokenId Comma = Def->Lexer->rule(",", "comma");
  TokenId Lb = Def->Lexer->rule("\\[", "lb");
  TokenId Rb = Def->Lexer->rule("\\]", "rb");
  Def->Lexer->skip(" ");

  // item := num (value: the integer)
  Px Item = L.map(
      L.tok(Num),
      [](ParseContext &Ctx, Value *A) {
        return Value::integer(spanInt(Ctx, A[0].asToken()));
      },
      "item");
  // list := '[' (item (',' item)*)? ']'  (value: sum of items)
  Px Rest = L.foldr(
      L.keepRight(L.tok(Comma), Item), Value::integer(0),
      [](ParseContext &, Value *A) {
        return Value::integer(A[0].asInt() + A[1].asInt());
      },
      "sumRest");
  Px Items = L.alt(L.eps(Value::integer(0), "noItems"),
                   L.seqMap(Item, Rest,
                            [](ParseContext &, Value *A) {
                              return Value::integer(A[0].asInt() +
                                                    A[1].asInt());
                            },
                            "sumItems"));
  Px List = L.all(
      {L.tok(Lb), Items, L.tok(Rb)},
      [](ParseContext &, Value *A) { return std::move(A[1]); }, "list");

  auto P = compileFlapMulti(Def, {{"list", List}, {"item", Item}});
  ASSERT_TRUE(P.ok()) << P.error();
  ASSERT_EQ(P->Entries.size(), 2u);

  EXPECT_EQ(P->parseEntry("list", "[1, 2, 3]")->asInt(), 6);
  EXPECT_EQ(P->parseEntry("list", "[]")->asInt(), 0);
  EXPECT_EQ(P->parseEntry("item", "42")->asInt(), 42);
  // Each entry accepts only its own language.
  EXPECT_FALSE(P->parseEntry("item", "[1]").ok());
  EXPECT_FALSE(P->parseEntry("list", "42").ok());
  EXPECT_FALSE(P->parseEntry("nope", "42").ok());
  // One shared machine, not two.
  EXPECT_GT(P->M.numStates(), 0);
}

TEST(MultiEntryTest, EntriesShareSubgrammars) {
  // The shared sub-expression normalizes once: the multi grammar is not
  // larger than the sum of two separate pipelines.
  auto Def = std::make_shared<GrammarDef>("multi2");
  Lang &L = *Def->L;
  TokenId A = Def->Lexer->rule("a", "a");
  TokenId B = Def->Lexer->rule("b", "b");
  Px Base = L.seqMap(
      L.tok(A), L.tok(B),
      [](ParseContext &, Value *) { return Value::unit(); }, "ab");
  Px Root1 = L.keepLeft(Base, L.tok(A));
  Px Root2 = L.keepLeft(Base, L.tok(B));
  auto P = compileFlapMulti(Def, {{"r1", Root1}, {"r2", Root2}});
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_TRUE(P->parseEntry("r1", "aba").ok());
  EXPECT_TRUE(P->parseEntry("r2", "abb").ok());
  EXPECT_FALSE(P->parseEntry("r1", "abb").ok());
}

//===----------------------------------------------------------------------===//
// chainl1 / opt
//===----------------------------------------------------------------------===//

struct ChainFixture : ::testing::Test {
  ChainFixture() : Def(std::make_shared<GrammarDef>("chain")) {
    Lang &L = *Def->L;
    TokenId Num = Def->Lexer->rule("[0-9]+", "num");
    TokenId Minus = Def->Lexer->rule("-", "minus");
    Def->Lexer->skip(" ");
    Px Operand = L.map(
        L.tok(Num),
        [](ParseContext &Ctx, Value *A) {
          return Value::integer(spanInt(Ctx, A[0].asToken()));
        },
        "numv");
    Px Op = L.ignore(L.tok(Minus));
    Def->Root = L.chainl1(
        Operand, Op,
        [](ParseContext &, Value Acc, Value, Value Y) {
          return Value::integer(Acc.asInt() - Y.asInt());
        });
    auto R = compileFlap(Def);
    EXPECT_TRUE(R.ok()) << R.error();
    if (R.ok())
      P = std::make_unique<FlapParser>(R.take());
  }
  std::shared_ptr<GrammarDef> Def;
  std::unique_ptr<FlapParser> P;
};

TEST_F(ChainFixture, LeftAssociativity) {
  // 10 - 2 - 3 must be (10-2)-3 = 5, not 10-(2-3) = 11.
  EXPECT_EQ(P->parse("10 - 2 - 3")->asInt(), 5);
  EXPECT_EQ(P->parse("7")->asInt(), 7);
  EXPECT_EQ(P->parse("1 - 1 - 1 - 1")->asInt(), -2);
  EXPECT_FALSE(P->parse("- 1").ok());
  EXPECT_FALSE(P->parse("1 -").ok());
}

TEST(OptTest, ZeroOrOne) {
  auto Def = std::make_shared<GrammarDef>("opt");
  Lang &L = *Def->L;
  TokenId A = Def->Lexer->rule("a", "a");
  TokenId B = Def->Lexer->rule("b", "b");
  // a b?  — value: true iff the b was present.
  Def->Root = L.seqMap(
      L.tok(A), L.opt(L.tok(B)),
      [](ParseContext &, Value *Args) {
        return Value::boolean(Args[1].isToken());
      },
      "hasB");
  auto P = compileFlap(Def);
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_FALSE(P->parse("a")->asBool());
  EXPECT_TRUE(P->parse("ab")->asBool());
  EXPECT_FALSE(P->parse("abb").ok());
}

//===----------------------------------------------------------------------===//
// Expected-token diagnostics
//===----------------------------------------------------------------------===//

TEST(DiagnosticsTest, ErrorsNameExpectedTokens) {
  auto P = compileFlap(makeSexpGrammar());
  ASSERT_TRUE(P.ok());
  auto R = P->parse("(a ?");
  ASSERT_FALSE(R.ok());
  // Failing inside the list: rpar (and the nested sexp alternatives)
  // are the candidates; the message must name at least rpar.
  EXPECT_NE(R.error().find("expected"), std::string::npos) << R.error();
  EXPECT_NE(R.error().find("rpar"), std::string::npos) << R.error();
  EXPECT_NE(R.error().find("offset 3"), std::string::npos) << R.error();

  auto R2 = compileFlap(makeJsonGrammar())->parse("{\"k\" 1}");
  ASSERT_FALSE(R2.ok());
  EXPECT_NE(R2.error().find("colon"), std::string::npos) << R2.error();
}

//===----------------------------------------------------------------------===//
// The >255-state int16 fallback of the staged machine
//===----------------------------------------------------------------------===//

TEST(BigMachineTest, Int16FallbackPath) {
  // Many long distinct keyword tokens force the DFA past 255 states.
  auto Def = std::make_shared<GrammarDef>("big");
  Lang &L = *Def->L;
  std::vector<TokenId> Kws;
  std::vector<std::string> Words;
  for (int I = 0; I < 80; ++I) {
    // Distinct 12-char keywords with distinct prefixes so DFA states
    // cannot share: first two chars encode the index.
    std::string W;
    W += static_cast<char>('a' + I % 26);
    W += static_cast<char>('a' + (I / 26) % 26);
    for (int J = 0; J < 10; ++J)
      W += static_cast<char>('a' + (I * 11 + J * 5) % 26);
    if (std::find(Words.begin(), Words.end(), W) != Words.end())
      continue;
    Words.push_back(W);
    Kws.push_back(Def->Lexer->rule(W, "kw" + std::to_string(I)));
  }
  Def->Lexer->skip(" ");
  // Grammar: count of keywords, any of them, repeated.
  Px Any = L.map(
      L.tok(Kws[0]), [](ParseContext &, Value *) { return Value::integer(1); },
      "one");
  for (size_t I = 1; I < Kws.size(); ++I)
    Any = L.alt(Any, L.map(L.tok(Kws[I]),
                           [](ParseContext &, Value *) {
                             return Value::integer(1);
                           },
                           "one"));
  Def->Root = L.foldr(
      Any, Value::integer(0),
      [](ParseContext &, Value *A) {
        return Value::integer(A[0].asInt() + A[1].asInt());
      },
      "sum");
  auto P = compileFlap(Def);
  ASSERT_TRUE(P.ok()) << P.error();
  ASSERT_GT(P->M.numStates(), 255) << "fixture no longer exercises int16";
  EXPECT_TRUE(P->M.Trans8.empty());

  std::string In;
  int64_t N = 0;
  for (int Rep = 0; Rep < 50; ++Rep)
    for (const std::string &W : Words) {
      In += W;
      In += ' ';
      ++N;
    }
  auto R = P->parse(In);
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R->asInt(), N);
  EXPECT_FALSE(P->parse("kwzzzzzz").ok());
}

} // namespace
