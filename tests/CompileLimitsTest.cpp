//===- tests/CompileLimitsTest.cpp - Packed-width and table-width limits ------===//
//
// Part of flap-cpp, a C++ reproduction of "flap: A Deterministic Parser
// with Fused Lexing" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// The staged machine packs an NtId into 15 bits and a scan start state
/// into 16 (CompiledParser::packNt), stores state ids as int16 in the
/// hot table, and selects the uint8 table only while state ids leave the
/// Dead8 sentinel (0xff) free. Grammars exceeding any width must fail
/// *gracefully* in compileFused — a silent wrap would corrupt every
/// packed symbol — and the 8-bit/16-bit cutoff must sit exactly at 255
/// states (a 256-state machine would alias state id 255 with Dead8).
///
//===----------------------------------------------------------------------===//

#include "engine/Compile.h"
#include "regex/Regex.h"

#include <gtest/gtest.h>

using namespace flap;

namespace {

/// A fused grammar with one nonterminal whose productions are the given
/// literal regexes (distinct first bytes, no shared derivative chains).
FusedGrammar literalGrammar(RegexArena &Arena,
                            const std::vector<std::string> &Literals) {
  FusedGrammar F;
  F.Start = 0;
  F.Nts.resize(1);
  F.Nts[0].Name = "root";
  for (size_t K = 0; K < Literals.size(); ++K) {
    FusedProd P;
    P.Re = Arena.literal(Literals[K]);
    P.FromTok = static_cast<TokenId>(K);
    F.Nts[0].Prods.push_back(std::move(P));
  }
  return F;
}

TEST(CompileLimitsTest, NtCountExceedingPackedWidthFailsGracefully) {
  // packNt holds an NtId in 15 bits: 0x8000 nonterminals is one too
  // many. The guard must fire before any staging work happens.
  RegexArena Arena;
  ActionTable Actions;
  FusedGrammar F;
  F.Start = 0;
  F.Nts.resize(CompiledParser::MaxPackedNts + 1);
  Result<CompiledParser> M = compileFused(Arena, F, Actions);
  ASSERT_FALSE(M.ok());
  EXPECT_NE(M.error().find("nonterminals"), std::string::npos) << M.error();
  EXPECT_NE(M.error().find("15 bits"), std::string::npos) << M.error();
}

TEST(CompileLimitsTest, NtCountAtPackedWidthIsAccepted) {
  // Exactly MaxPackedNts nonterminals still packs: ids 0..0x7ffe.
  // (All but the start nonterminal are unreachable and trivially empty —
  // the guard is about widths, not usefulness.)
  RegexArena Arena;
  ActionTable Actions;
  FusedGrammar F = literalGrammar(Arena, {"ok"});
  F.Nts.resize(CompiledParser::MaxPackedNts);
  Result<CompiledParser> M = compileFused(Arena, F, Actions);
  ASSERT_TRUE(M.ok()) << M.error();
  EXPECT_TRUE(M->parse("ok").ok());
}

TEST(CompileLimitsTest, StateCountExceedingInt16FailsGracefully) {
  // Drive the state count past MaxPackedStates (32768) with a MaxStates
  // bound far above it: 52 literal productions of 700 bytes each give
  // ~36400 distinct derivative states. The width guard must fire even
  // though the caller's bound allows the specialization.
  RegexArena Arena;
  ActionTable Actions;
  std::vector<std::string> Literals;
  for (char C = 'a'; C <= 'z'; ++C)
    Literals.push_back(std::string(700, C));
  for (char C = 'A'; C <= 'Z'; ++C)
    Literals.push_back(std::string(700, C));
  FusedGrammar F = literalGrammar(Arena, Literals);
  Result<CompiledParser> M =
      compileFused(Arena, F, Actions, /*MaxStates=*/size_t(1) << 17);
  ASSERT_FALSE(M.ok());
  EXPECT_NE(M.error().find("16-bit"), std::string::npos) << M.error();
}

TEST(CompileLimitsTest, MaxStatesBoundStillReportsItsOwnError) {
  // A caller bound below the width cap keeps its original diagnostic.
  RegexArena Arena;
  ActionTable Actions;
  FusedGrammar F = literalGrammar(Arena, {std::string(64, 'a')});
  Result<CompiledParser> M = compileFused(Arena, F, Actions, /*MaxStates=*/8);
  ASSERT_FALSE(M.ok());
  EXPECT_NE(M.error().find("exceeds 8 states"), std::string::npos)
      << M.error();
}

/// Compiles a single-literal machine with exactly \p NumStates states
/// (a literal of length L stages to L+1 states: one per suffix).
Result<CompiledParser> machineWithStates(RegexArena &Arena,
                                         const ActionTable &Actions,
                                         size_t NumStates,
                                         std::string &Input) {
  Input.assign(NumStates - 1, 'a');
  FusedGrammar F = literalGrammar(Arena, {Input});
  return compileFused(Arena, F, Actions, /*MaxStates=*/size_t(1) << 12);
}

TEST(CompileLimitsTest, Trans8CutoffIsExactlyAtDead8Boundary) {
  ActionTable Actions;

  // 255 states: max id 254, sentinel 0xff free — the uint8 table must be
  // selected and the deepest state must still be reachable and correct.
  {
    RegexArena Arena;
    std::string Input;
    Result<CompiledParser> M = machineWithStates(Arena, Actions, 255, Input);
    ASSERT_TRUE(M.ok()) << M.error();
    ASSERT_EQ(M->numStates(), 255);
    EXPECT_FALSE(M->Trans8.empty())
        << "255-state machine should select the uint8 table";
    // Every non-dead cell must stay clear of the Dead8 sentinel.
    for (uint8_t Cell : M->Trans8)
      if (Cell != CompiledParser::Dead8)
        EXPECT_LT(Cell, 255);
    EXPECT_TRUE(M->parse(Input).ok());
    EXPECT_TRUE(M->recognize(Input));
    EXPECT_FALSE(M->parse(Input + "a").ok()); // one byte past the literal
    EXPECT_FALSE(M->parse(Input.substr(1)).ok());

    // The 16-bit kernel over the same machine agrees byte-for-byte.
    CompiledParser Wide = *M;
    Wide.Trans8.clear();
    Result<Value> A = M->parse(Input), B = Wide.parse(Input);
    ASSERT_TRUE(A.ok() && B.ok());
    EXPECT_EQ(*A, *B);
  }

  // 256 states: state id 255 would alias Dead8 — the uint8 table must
  // NOT be selected, and the int16 kernel must carry the machine.
  {
    RegexArena Arena;
    std::string Input;
    Result<CompiledParser> M = machineWithStates(Arena, Actions, 256, Input);
    ASSERT_TRUE(M.ok()) << M.error();
    ASSERT_EQ(M->numStates(), 256);
    EXPECT_TRUE(M->Trans8.empty())
        << "256-state machine would alias state id 255 with Dead8";
    EXPECT_TRUE(M->parse(Input).ok());
    EXPECT_TRUE(M->recognize(Input));
    EXPECT_FALSE(M->parse(Input + "a").ok());
  }
}

} // namespace
