//===- tests/ServeTest.cpp - Thread-pooled serving harness ---------------===//
//
// Part of flap-cpp, a C++ reproduction of "flap: A Deterministic Parser
// with Fused Lexing" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// The serving front-end (engine/Serve.h) against the direct batch API:
/// replies must carry exactly what CompiledParser::parseBatch /
/// parseBatchRecover produce for the same inputs, under concurrent
/// submitters, replies consumed and destroyed on foreign threads
/// (the pool handoff), queue backpressure, and the shutdown drain
/// guarantee. This suite is one of the two multithreaded tier-1 suites
/// the tier1-tsan CI lane exists for (the other is ShardDiffTest).
///
//===----------------------------------------------------------------------===//

#include "engine/Pipeline.h"
#include "engine/Serve.h"
#include "grammars/Grammars.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace flap;

namespace {

struct ServeRig {
  std::shared_ptr<GrammarDef> Def;
  FlapParser P;
  bool Compiled = false;

  ServeRig() : Def(makeJsonGrammar()) {
    auto R = compileFlap(Def);
    if (!R.ok()) {
      ADD_FAILURE() << "compile failed: " << R.error();
      return;
    }
    P = R.take();
    Compiled = true;
  }
};

std::vector<std::string> docs(size_t N, bool CorruptSome = false) {
  std::vector<std::string> Out;
  for (size_t I = 0; I < N; ++I) {
    if (CorruptSome && I % 5 == 3)
      Out.push_back("{\"bad\": ##" + std::to_string(I) + "}");
    else
      Out.push_back("{\"i\": " + std::to_string(I) + ", \"xs\": [1, [2], " +
                    std::to_string(I * 7) + "]}");
  }
  return Out;
}

std::vector<std::string_view> views(const std::vector<std::string> &Docs) {
  return std::vector<std::string_view>(Docs.begin(), Docs.end());
}

TEST(ServeTest, MatchesDirectBatch) {
  ServeRig Rig;
  if (!Rig.Compiled)
    return;
  const std::vector<std::string> Docs = docs(40);
  const std::vector<std::string_view> Views = views(Docs);

  ParseScratch Scratch;
  const std::vector<Result<Value>> Direct =
      Rig.P.M.parseBatch(Rig.P.M.Start, Views, Scratch);

  ServeOptions O;
  O.Threads = 4;
  ParseService S(Rig.P.M, Rig.P.M.Start, O);
  std::vector<std::future<ServeReply>> Fs;
  for (int R = 0; R < 32; ++R)
    Fs.push_back(S.submit(Views));
  for (auto &F : Fs) {
    ServeReply Rep = F.get();
    ASSERT_TRUE(Rep.Accepted);
    ASSERT_EQ(Rep.Results.size(), Direct.size());
    for (size_t I = 0; I < Direct.size(); ++I) {
      ASSERT_EQ(Direct[I].ok(), Rep.Results[I].ok()) << I;
      if (Direct[I].ok())
        EXPECT_EQ(Direct[I].value().str(), Rep.Results[I].value().str()) << I;
      else
        EXPECT_EQ(Direct[I].error(), Rep.Results[I].error()) << I;
    }
  }
}

TEST(ServeTest, RecoverModeMatchesDirect) {
  ServeRig Rig;
  if (!Rig.Compiled)
    return;
  const std::vector<std::string> Docs = docs(25, /*CorruptSome=*/true);
  const std::vector<std::string_view> Views = views(Docs);

  RecoverOptions RO;
  ParseScratch Scratch;
  const std::vector<RecoveredParse> Direct = Rig.P.M.parseBatchRecover(
      Rig.P.M.Start, Views.data(), Views.size(), Scratch, nullptr, RO);

  ServeOptions O;
  O.Threads = 3;
  O.Recover = true;
  ParseService S(Rig.P.M, Rig.P.M.Start, O);
  ServeReply Rep = S.submit(Views).get();
  ASSERT_TRUE(Rep.Accepted);
  ASSERT_EQ(Rep.Recovered.size(), Direct.size());
  for (size_t I = 0; I < Direct.size(); ++I) {
    EXPECT_EQ(Direct[I].Truncated, Rep.Recovered[I].Truncated) << I;
    ASSERT_EQ(Direct[I].Errors.size(), Rep.Recovered[I].Errors.size()) << I;
    for (size_t E = 0; E < Direct[I].Errors.size(); ++E)
      EXPECT_EQ(Direct[I].Errors[E], Rep.Recovered[I].Errors[E]) << I;
    ASSERT_EQ(Direct[I].Values.size(), Rep.Recovered[I].Values.size()) << I;
    for (size_t V = 0; V < Direct[I].Values.size(); ++V)
      EXPECT_EQ(Direct[I].Values[V].str(), Rep.Recovered[I].Values[V].str())
          << I;
  }
}

/// Concurrent submitters from several threads; every reply correct.
TEST(ServeTest, ConcurrentSubmitters) {
  ServeRig Rig;
  if (!Rig.Compiled)
    return;
  const std::vector<std::string> Docs = docs(16);
  const std::vector<std::string_view> Views = views(Docs);
  ParseScratch Scratch;
  const std::vector<Result<Value>> Direct =
      Rig.P.M.parseBatch(Rig.P.M.Start, Views, Scratch);

  ServeOptions O;
  O.Threads = 4;
  O.QueueCapacity = 8; // force backpressure
  ParseService S(Rig.P.M, Rig.P.M.Start, O);
  std::vector<std::thread> Producers;
  std::vector<int> Failures(4, 0);
  for (int T = 0; T < 4; ++T)
    Producers.emplace_back([&, T] {
      for (int R = 0; R < 25; ++R) {
        ServeReply Rep = S.submit(Views).get(); // consumed on this thread
        if (!Rep.Accepted || Rep.Results.size() != Views.size()) {
          ++Failures[T];
          continue;
        }
        for (size_t I = 0; I < Direct.size(); ++I)
          if (!Rep.Results[I].ok() ||
              Rep.Results[I].value().str() != Direct[I].value().str())
            ++Failures[T];
      }
    });
  for (auto &P : Producers)
    P.join();
  for (int T = 0; T < 4; ++T)
    EXPECT_EQ(Failures[T], 0) << "producer " << T;
}

/// Values escaping the reply stay valid after the reply AND the
/// service are gone; replies may be destroyed on a different thread
/// than the one that consumed them.
TEST(ServeTest, EscapedValuesAndForeignDestruction) {
  ServeRig Rig;
  if (!Rig.Compiled)
    return;
  const std::vector<std::string> Docs = docs(8);
  const std::vector<std::string_view> Views = views(Docs);

  std::vector<Value> Escaped;
  std::string Expect;
  {
    ServeOptions O;
    O.Threads = 2;
    ParseService S(Rig.P.M, Rig.P.M.Start, O);
    ServeReply Rep = S.submit(Views).get();
    ASSERT_TRUE(Rep.Accepted);
    Expect = Rep.Results[0].value().str();
    for (auto &R : Rep.Results)
      Escaped.push_back(std::move(*R));
    // Destroy a whole reply on a foreign thread (the documented
    // single-owner handoff: the thread adopts the pool).
    ServeReply Other = S.submit(Views).get();
    std::thread([Moved = std::move(Other)]() mutable {}).join();
  }
  EXPECT_EQ(Escaped[0].str(), Expect);
  Escaped.clear(); // frees pooled nodes after the bank died
}

TEST(ServeTest, ShutdownDrainsAndRejectsLateSubmits) {
  ServeRig Rig;
  if (!Rig.Compiled)
    return;
  const std::vector<std::string> Docs = docs(12);
  const std::vector<std::string_view> Views = views(Docs);
  ServeOptions O;
  O.Threads = 2;
  ParseService S(Rig.P.M, Rig.P.M.Start, O);
  std::vector<std::future<ServeReply>> Fs;
  for (int R = 0; R < 30; ++R)
    Fs.push_back(S.submit(Views));
  S.shutdown();
  for (auto &F : Fs) {
    ServeReply Rep = F.get(); // every accepted future becomes ready
    ASSERT_TRUE(Rep.Accepted);
    EXPECT_EQ(Rep.Results.size(), Views.size());
  }
  ServeReply Late = S.submit(Views).get();
  EXPECT_FALSE(Late.Accepted);
  EXPECT_TRUE(Late.Results.empty());
  S.shutdown(); // idempotent
}

} // namespace
