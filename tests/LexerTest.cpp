//===- tests/LexerTest.cpp - Lexer substrate tests ----------------------------===//
//
// Part of flap-cpp, a C++ reproduction of "flap: A Deterministic Parser
// with Fused Lexing" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "lexer/CompiledLexer.h"
#include "lexer/LexerInterp.h"
#include "lexer/LexerSpec.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace flap;

namespace {

/// The s-expression lexer of paper Fig. 3b.
struct SexpLexer {
  RegexArena A;
  TokenSet Toks;
  LexerSpec Spec{A, Toks};
  TokenId Atom, Lpar, Rpar;

  SexpLexer() {
    Atom = Spec.rule("[a-z]+", "atom");
    Spec.skip("[ \\n]");
    Lpar = Spec.rule("\\(", "lpar");
    Rpar = Spec.rule("\\)", "rpar");
  }
};

TEST(LexerSpecTest, CanonicalizationDisjoint) {
  SexpLexer L;
  Result<CanonicalLexer> C = L.Spec.canonicalize();
  ASSERT_TRUE(C.ok()) << C.error();
  // All rules pairwise disjoint, including against the skip regex.
  std::vector<RegexId> Rs = C->allRegexes();
  for (size_t I = 0; I < Rs.size(); ++I)
    for (size_t J = I + 1; J < Rs.size(); ++J)
      EXPECT_TRUE(L.A.disjoint(Rs[I], Rs[J]));
}

TEST(LexerSpecTest, KeywordsCutIdentifiers) {
  RegexArena A;
  TokenSet Toks;
  LexerSpec Spec(A, Toks);
  TokenId Let = Spec.rule("let", "let");
  TokenId Id = Spec.rule("[a-z]+", "id");
  Result<CanonicalLexer> C = Spec.canonicalize();
  ASSERT_TRUE(C.ok()) << C.error();
  // "let" is no longer in the id rule's language.
  EXPECT_FALSE(A.matches(C->tokenRegex(A, Id), "let"));
  EXPECT_TRUE(A.matches(C->tokenRegex(A, Id), "lets"));
  EXPECT_TRUE(A.matches(C->tokenRegex(A, Let), "let"));
}

TEST(LexerSpecTest, MergesDuplicateTokensAndSkips) {
  RegexArena A;
  TokenSet Toks;
  LexerSpec Spec(A, Toks);
  TokenId N = Spec.rule("[0-9]+", "num");
  Spec.rule("0x[0-9a-f]+", "num"); // same token, second rule
  Spec.skip(" ");
  Spec.skip("\\n");
  Result<CanonicalLexer> C = Spec.canonicalize();
  ASSERT_TRUE(C.ok()) << C.error();
  ASSERT_EQ(C->Rules.size(), 1u); // one canonical rule for 'num'
  EXPECT_TRUE(A.matches(C->Rules[0].Re, "17"));
  EXPECT_TRUE(A.matches(C->Rules[0].Re, "0xff"));
  EXPECT_EQ(C->Rules[0].Tok, N);
  EXPECT_TRUE(A.matches(C->SkipRe, " "));
  EXPECT_TRUE(A.matches(C->SkipRe, "\n"));
}

TEST(LexerSpecTest, FullyShadowedRuleIsAnError) {
  RegexArena A;
  TokenSet Toks;
  LexerSpec Spec(A, Toks);
  Spec.rule("[a-z]+", "id");
  Spec.rule("abc", "kw"); // completely inside id's language
  Result<CanonicalLexer> C = Spec.canonicalize();
  ASSERT_FALSE(C.ok());
  EXPECT_NE(C.error().find("kw"), std::string::npos);
}

TEST(LexerSpecTest, EpsilonSubtracted) {
  RegexArena A;
  TokenSet Toks;
  LexerSpec Spec(A, Toks);
  Spec.rule("a*", "as"); // nullable rule
  Result<CanonicalLexer> C = Spec.canonicalize();
  ASSERT_TRUE(C.ok()) << C.error();
  EXPECT_FALSE(A.nullable(C->Rules[0].Re));
  EXPECT_TRUE(A.matches(C->Rules[0].Re, "aa"));
}

TEST(LexerInterpTest, SexpExample) {
  SexpLexer L;
  CanonicalLexer C = L.Spec.canonicalize().take();
  auto Lexed = lexAll(L.A, C, "(ab c)\n(d)");
  ASSERT_TRUE(Lexed.ok()) << Lexed.error();
  std::vector<TokenId> Ids;
  for (const Lexeme &T : *Lexed)
    Ids.push_back(T.Tok);
  EXPECT_EQ(Ids, (std::vector<TokenId>{L.Lpar, L.Atom, L.Atom, L.Rpar,
                                       L.Lpar, L.Atom, L.Rpar}));
  // Spans are correct.
  EXPECT_EQ((*Lexed)[1].Begin, 1u);
  EXPECT_EQ((*Lexed)[1].End, 3u);
}

TEST(LexerInterpTest, LongestMatch) {
  RegexArena A;
  TokenSet Toks;
  LexerSpec Spec(A, Toks);
  TokenId Eq = Spec.rule("=", "eq");
  TokenId EqEq = Spec.rule("==", "eqeq");
  CanonicalLexer C = Spec.canonicalize().take();
  auto R = lexAll(A, C, "===");
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(R->size(), 2u);
  EXPECT_EQ((*R)[0].Tok, EqEq); // longest match first
  EXPECT_EQ((*R)[1].Tok, Eq);
}

TEST(LexerInterpTest, ErrorPosition) {
  SexpLexer L;
  CanonicalLexer C = L.Spec.canonicalize().take();
  auto R = lexAll(L.A, C, "ab !");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("offset 3"), std::string::npos);
}

TEST(LexerInterpTest, EmptyInput) {
  SexpLexer L;
  CanonicalLexer C = L.Spec.canonicalize().take();
  auto R = lexAll(L.A, C, "");
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R->empty());
}

TEST(CompiledLexerTest, AgreesWithInterpreter) {
  SexpLexer L;
  CanonicalLexer C = L.Spec.canonicalize().take();
  CompiledLexer D(L.A, C);
  Rng R(99);
  static const char Chars[] = "abz() \n!()";
  for (int Trial = 0; Trial < 300; ++Trial) {
    std::string In;
    size_t Len = R.below(40);
    for (size_t I = 0; I < Len; ++I)
      In += Chars[R.below(sizeof(Chars) - 1)];
    auto Ref = lexAll(L.A, C, In);
    auto Got = D.lexAll(In);
    ASSERT_EQ(Ref.ok(), Got.ok()) << "input: " << In;
    if (Ref.ok()) {
      EXPECT_EQ(*Ref, *Got) << "input: " << In;
    }
  }
}

TEST(CompiledLexerTest, RawIncludesSkips) {
  SexpLexer L;
  CanonicalLexer C = L.Spec.canonicalize().take();
  CompiledLexer D(L.A, C);
  uint32_t Pos = 0;
  Lexeme T;
  ASSERT_EQ(D.nextRaw("a b", Pos, T), LexStatus::Token);
  EXPECT_EQ(T.Tok, L.Atom);
  ASSERT_EQ(D.nextRaw("a b", Pos, T), LexStatus::Token);
  EXPECT_EQ(T.Tok, NoToken); // the skip lexeme is visible raw
  ASSERT_EQ(D.nextRaw("a b", Pos, T), LexStatus::Token);
  EXPECT_EQ(T.Tok, L.Atom);
  EXPECT_EQ(D.nextRaw("a b", Pos, T), LexStatus::Eof);
}

TEST(CompiledLexerTest, QuotedCsvFieldNeedsLookahead) {
  // The csv case the paper singles out (§6): "" escapes need more than
  // one character of lookahead; longest-match DFA handles it.
  RegexArena A;
  TokenSet Toks;
  LexerSpec Spec(A, Toks);
  TokenId Q = Spec.rule("\"(\"\"|[^\"])*\"", "quoted");
  CanonicalLexer C = Spec.canonicalize().take();
  CompiledLexer D(A, C);
  auto R = D.lexAll("\"a\"\"b\"");
  ASSERT_TRUE(R.ok()) << R.error();
  ASSERT_EQ(R->size(), 1u); // one token covering the whole input
  EXPECT_EQ((*R)[0].Tok, Q);
  EXPECT_EQ((*R)[0].End, 6u);
}

TEST(CompiledLexerTest, StateCountIsReasonable) {
  SexpLexer L;
  CanonicalLexer C = L.Spec.canonicalize().take();
  CompiledLexer D(L.A, C);
  EXPECT_GT(D.numStates(), 1);
  EXPECT_LT(D.numStates(), 32);
  EXPECT_LE(D.numClasses(), 8);
}

} // namespace
