//===- tests/RunSkipDiffTest.cpp - Kernel differential fuzzing ----------------===//
//
// Part of flap-cpp, a C++ reproduction of "flap: A Deterministic Parser
// with Fused Lexing" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// The accelerated execution tier (run-skip bulk skipping, fused
/// accept/transition encoding, table-width templated kernels, the
/// allocation-free residual loop) must be observationally invisible:
/// every kernel — scan8, scan16, and the pre-run-skip legacy walk — must
/// produce byte-identical accept/reject decisions and identical `Value`
/// trees against the Fig. 9 fused interpreter, the unstaged executable
/// specification. Inputs deliberately straddle the skip kernels' 8-byte
/// word and 16-byte SIMD block widths.
///
//===----------------------------------------------------------------------===//

#include "engine/Compile.h"
#include "engine/FusedInterp.h"
#include "engine/Pipeline.h"
#include "engine/RunSkip.h"
#include "grammars/Grammars.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace flap;

namespace {

/// Machines under differential test for one grammar: the 8-bit kernel,
/// the machine with Trans8 suppressed (forcing the 16-bit kernel), and
/// the legacy byte-at-a-time walk.
struct Rig {
  std::shared_ptr<GrammarDef> Def;
  FlapParser P;
  CompiledParser Wide; ///< copy with Trans8 cleared → scan16 path
  ParseScratch Scratch;

  explicit Rig(std::shared_ptr<GrammarDef> D) : Def(std::move(D)) {
    auto R = compileFlap(Def);
    if (!R.ok()) {
      ADD_FAILURE() << "compile failed: " << R.error();
      return;
    }
    P = R.take();
    Wide = P.M;
    Wide.Trans8.clear();
  }

  void *fresh(std::shared_ptr<void> &C) {
    if (Def->NewCtx)
      C = Def->NewCtx();
    return C.get();
  }

  /// Runs every engine on \p In; asserts pairwise agreement of success
  /// and semantic values. Returns the accelerated machine's verdict.
  bool check(std::string_view In) {
    std::shared_ptr<void> C1, C2, C3, C4;
    Result<Value> Narrow = P.M.parse(In, Scratch, fresh(C1));
    Result<Value> Wide16 = Wide.parse(In, fresh(C2));
    Result<Value> Legacy = P.M.parseLegacy(In, fresh(C3));
    Result<Value> Spec =
        parseFusedInterp(*Def->Re, P.F, Def->L->Actions, In, fresh(C4));

    EXPECT_EQ(Narrow.ok(), Spec.ok())
        << Def->Name << ": staged vs interpreter on '" << In << "'";
    EXPECT_EQ(Narrow.ok(), Wide16.ok())
        << Def->Name << ": scan8 vs scan16 on '" << In << "'";
    EXPECT_EQ(Narrow.ok(), Legacy.ok())
        << Def->Name << ": run-skip vs legacy walk on '" << In << "'";
    if (Narrow.ok() && Spec.ok() && Wide16.ok() && Legacy.ok()) {
      EXPECT_EQ(*Narrow, *Spec) << Def->Name << " value vs spec";
      EXPECT_EQ(*Narrow, *Wide16) << Def->Name << " value vs scan16";
      EXPECT_EQ(*Narrow, *Legacy) << Def->Name << " value vs legacy";
    }
    // Diagnostics must not drift between kernels either: the legacy walk
    // reports the same absolute offsets and expected-token sets as the
    // run-skip fast path (the streaming parser is pinned to these same
    // strings by tests/StreamDiffTest.cpp).
    if (!Narrow.ok() && !Wide16.ok())
      EXPECT_EQ(Narrow.error(), Wide16.error())
          << Def->Name << ": scan8 vs scan16 diagnostics on '" << In << "'";
    if (!Narrow.ok() && !Legacy.ok())
      EXPECT_EQ(Narrow.error(), Legacy.error())
          << Def->Name << ": run-skip vs legacy diagnostics on '" << In
          << "'";
    bool Rec = P.M.recognize(In, Scratch);
    EXPECT_EQ(Rec, Narrow.ok()) << Def->Name << ": recognize vs parse";
    EXPECT_EQ(P.M.recognizeLegacy(In), Rec)
        << Def->Name << ": recognizeLegacy vs recognize";
    return Narrow.ok();
  }
};

TEST(RunSkipDiffTest, SkipRunMatchesNaiveLoop) {
  // The kernel contract, on every block-width boundary and with the
  // stop byte at every offset.
  SkipSet S;
  for (unsigned char C : std::string_view("abcxyz0123456789 \t\n"))
    S.set(C);
  S.finalize();
  Rng R(7);
  for (int Len = 0; Len <= 70; ++Len) {
    for (int Stop = 0; Stop <= Len; ++Stop) {
      std::string In;
      for (int I = 0; I < Len; ++I)
        In += (I == Stop) ? '!' : "a0 z9\t"[R.below(6)];
      for (size_t From = 0; From < 2u && From <= In.size(); ++From) {
        size_t Naive = From;
        while (Naive < In.size() &&
               S.test(static_cast<unsigned char>(In[Naive])))
          ++Naive;
        EXPECT_EQ(skipRun(S, In.data(), From, In.size()), Naive)
            << "len=" << Len << " stop=" << Stop << " from=" << From;
      }
    }
  }
}

TEST(RunSkipDiffTest, SkipSetRangeDecomposition) {
  SkipSet Digits;
  for (unsigned char C = '0'; C <= '9'; ++C)
    Digits.set(C);
  Digits.finalize();
  EXPECT_EQ(Digits.NumRanges, 1);
  EXPECT_EQ(Digits.Lo[0], '0');
  EXPECT_EQ(Digits.Hi[0], '9');

  // A maximally fragmented set must fall back to the bitmap kernel.
  SkipSet Odd;
  for (int C = 1; C < 40; C += 2)
    Odd.set(static_cast<unsigned char>(C));
  Odd.finalize();
  EXPECT_EQ(Odd.NumRanges, 0);
  EXPECT_FALSE(Odd.empty());
}

TEST(RunSkipDiffTest, RunsStraddlingBlockWidths) {
  // Atom and whitespace runs of every length around the 8-byte word and
  // 16-byte SIMD boundaries, scanned by every kernel.
  Rig R(makeSexpGrammar());
  for (int L = 1; L <= 40; ++L) {
    std::string Atom(L, 'a');
    std::string Ws(L, ' ');
    R.check("(" + Atom + ")");
    R.check("(" + Ws + Atom + Ws + ")");
    R.check(Atom);
    R.check("(" + Atom + " " + Atom + ")");
    // Run ending exactly at end-of-input, and input ending mid-run.
    R.check(Atom + Ws);
    R.check("(" + Atom); // reject: unclosed
  }
}

TEST(RunSkipDiffTest, JsonStringAndNumberRuns) {
  Rig R(makeJsonGrammar());
  for (int L = 1; L <= 40; ++L) {
    std::string Key(L, 'k');
    std::string Num(L, '7');
    R.check("{\"" + Key + "\": 1}");
    R.check("[" + Num + "]");
    R.check("[-" + Num + "." + Num + "]");
    R.check("[\"" + std::string(L, ' ') + "\"]"); // spaces inside a string
  }
}

TEST(RunSkipDiffTest, EofInsideSkipAttemptStillFindsTokenMatch) {
  // Adversarial lexer: the skip regex continues past its accept with a
  // byte that also starts a token (" (-!)?" vs dash "-"). Ending the
  // input inside the speculative skip attempt ("x -") forces the scan
  // to rescan the suffix after the committed whitespace — the in-place
  // F2 rescan must behave identically at end-of-input and on a dead
  // transition.
  auto Def = std::make_shared<GrammarDef>("skipdash");
  Lang &L = *Def->L;
  TokenId Atom = Def->Lexer->rule("[a-z]+", "atom");
  TokenId Dash = Def->Lexer->rule("-", "dash");
  Def->Lexer->skip(" (-!)?");
  Def->Root = L.map(
      L.seq(L.tok(Atom), L.alt(L.eps(), L.tok(Dash))),
      [](ParseContext &, Value *) { return Value::unit(); }, "ignore");
  Rig R(Def);
  EXPECT_TRUE(R.check("x -"));  // EOF inside " -!" attempt; dash matches
  EXPECT_TRUE(R.check("x -!")); // whole " -!" is whitespace; eps branch
  EXPECT_TRUE(R.check("x "));   // EOF exactly at the whitespace accept
  EXPECT_TRUE(R.check("x- "));
  R.check("x -! -");            // ws, then EOF inside a second attempt
  R.check("x !");               // reject identically everywhere
}

TEST(RunSkipDiffTest, AllGrammarsOnGeneratedCorpora) {
  for (auto &Def : allBenchmarkGrammars()) {
    Rig R(Def);
    for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
      Workload W = genWorkload(Def->Name, Seed, 4000 + Seed * 3000);
      EXPECT_TRUE(R.check(W.Input)) << Def->Name << " seed " << Seed;
    }
  }
}

TEST(RunSkipDiffTest, MutationFuzz) {
  // Random byte edits: every kernel must still agree, accept or reject.
  Rng Rand(42);
  for (auto &Def : allBenchmarkGrammars()) {
    Rig R(Def);
    Workload W = genWorkload(Def->Name, 9, 3000);
    for (int Round = 0; Round < 60; ++Round) {
      std::string In = W.Input;
      int Edits = 1 + static_cast<int>(Rand.below(3));
      for (int E = 0; E < Edits; ++E) {
        size_t At = Rand.below(In.size());
        switch (Rand.below(3)) {
        case 0:
          In[At] = static_cast<char>(Rand.below(128));
          break;
        case 1:
          In.erase(At, 1 + Rand.below(4));
          break;
        default:
          In.insert(At, 1 + Rand.below(3),
                    "(){}[]\", \n0a"[Rand.below(12)]);
          break;
        }
        if (In.empty())
          In = "x";
      }
      R.check(In);
    }
  }
}

TEST(RunSkipDiffTest, TruncationSweep) {
  // Every prefix boundary near the start and end of a small corpus —
  // exercises end-of-input inside runs, inside lexemes, and inside
  // trailing whitespace.
  for (auto &Def : allBenchmarkGrammars()) {
    Rig R(Def);
    Workload W = genWorkload(Def->Name, 5, 600);
    size_t N = W.Input.size();
    for (size_t Cut = 0; Cut <= N; Cut += (Cut < 40 || N - Cut < 40) ? 1 : 13)
      R.check(std::string_view(W.Input).substr(0, Cut));
  }
}

} // namespace
