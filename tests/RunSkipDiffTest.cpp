//===- tests/RunSkipDiffTest.cpp - Kernel differential fuzzing ----------------===//
//
// Part of flap-cpp, a C++ reproduction of "flap: A Deterministic Parser
// with Fused Lexing" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// The accelerated execution tier (run-skip bulk skipping, fused
/// accept/transition encoding, table-width templated kernels, the
/// allocation-free residual loop) must be observationally invisible:
/// every kernel — scan8, scan16, and the pre-run-skip legacy walk — must
/// produce byte-identical accept/reject decisions and identical `Value`
/// trees against the Fig. 9 fused interpreter, the unstaged executable
/// specification. Inputs deliberately straddle the skip kernels' 8-byte
/// word and 16-byte SIMD block widths.
///
//===----------------------------------------------------------------------===//

#include "engine/Compile.h"
#include "engine/FusedInterp.h"
#include "engine/Pipeline.h"
#include "engine/RunSkip.h"
#include "grammars/Grammars.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace flap;

namespace {

/// Machines under differential test for one grammar: the 8-bit kernel,
/// the machine with Trans8 suppressed (forcing the 16-bit kernel), and
/// the legacy byte-at-a-time walk.
struct Rig {
  std::shared_ptr<GrammarDef> Def;
  FlapParser P;
  CompiledParser Wide; ///< copy with Trans8 cleared → scan16 path
  ParseScratch Scratch;

  explicit Rig(std::shared_ptr<GrammarDef> D) : Def(std::move(D)) {
    auto R = compileFlap(Def);
    if (!R.ok()) {
      ADD_FAILURE() << "compile failed: " << R.error();
      return;
    }
    P = R.take();
    Wide = P.M;
    Wide.Trans8.clear();
  }

  void *fresh(std::shared_ptr<void> &C) {
    if (Def->NewCtx)
      C = Def->NewCtx();
    return C.get();
  }

  /// Runs every engine on \p In; asserts pairwise agreement of success
  /// and semantic values. Returns the accelerated machine's verdict.
  bool check(std::string_view In) {
    std::shared_ptr<void> C1, C2, C3, C4;
    Result<Value> Narrow = P.M.parse(In, Scratch, fresh(C1));
    Result<Value> Wide16 = Wide.parse(In, fresh(C2));
    Result<Value> Legacy = P.M.parseLegacy(In, fresh(C3));
    Result<Value> Spec =
        parseFusedInterp(*Def->Re, P.F, Def->L->Actions, In, fresh(C4));

    EXPECT_EQ(Narrow.ok(), Spec.ok())
        << Def->Name << ": staged vs interpreter on '" << In << "'";
    EXPECT_EQ(Narrow.ok(), Wide16.ok())
        << Def->Name << ": scan8 vs scan16 on '" << In << "'";
    EXPECT_EQ(Narrow.ok(), Legacy.ok())
        << Def->Name << ": run-skip vs legacy walk on '" << In << "'";
    if (Narrow.ok() && Spec.ok() && Wide16.ok() && Legacy.ok()) {
      EXPECT_EQ(*Narrow, *Spec) << Def->Name << " value vs spec";
      EXPECT_EQ(*Narrow, *Wide16) << Def->Name << " value vs scan16";
      EXPECT_EQ(*Narrow, *Legacy) << Def->Name << " value vs legacy";
    }
    // Diagnostics must not drift between kernels either: the legacy walk
    // reports the same absolute offsets and expected-token sets as the
    // run-skip fast path (the streaming parser is pinned to these same
    // strings by tests/StreamDiffTest.cpp).
    if (!Narrow.ok() && !Wide16.ok())
      EXPECT_EQ(Narrow.error(), Wide16.error())
          << Def->Name << ": scan8 vs scan16 diagnostics on '" << In << "'";
    if (!Narrow.ok() && !Legacy.ok())
      EXPECT_EQ(Narrow.error(), Legacy.error())
          << Def->Name << ": run-skip vs legacy diagnostics on '" << In
          << "'";
    bool Rec = P.M.recognize(In, Scratch);
    EXPECT_EQ(Rec, Narrow.ok()) << Def->Name << ": recognize vs parse";
    EXPECT_EQ(P.M.recognizeLegacy(In), Rec)
        << Def->Name << ": recognizeLegacy vs recognize";
    return Narrow.ok();
  }
};

TEST(RunSkipDiffTest, SkipRunMatchesNaiveLoop) {
  // The kernel contract, on every block-width boundary and with the
  // stop byte at every offset.
  SkipSet S;
  for (unsigned char C : std::string_view("abcxyz0123456789 \t\n"))
    S.set(C);
  S.finalize();
  Rng R(7);
  for (int Len = 0; Len <= 70; ++Len) {
    for (int Stop = 0; Stop <= Len; ++Stop) {
      std::string In;
      for (int I = 0; I < Len; ++I)
        In += (I == Stop) ? '!' : "a0 z9\t"[R.below(6)];
      for (size_t From = 0; From < 2u && From <= In.size(); ++From) {
        size_t Naive = From;
        while (Naive < In.size() &&
               S.test(static_cast<unsigned char>(In[Naive])))
          ++Naive;
        EXPECT_EQ(skipRun(S, In.data(), From, In.size()), Naive)
            << "len=" << Len << " stop=" << Stop << " from=" << From;
      }
    }
  }
}

TEST(RunSkipDiffTest, SkipSetRangeDecomposition) {
  SkipSet Digits;
  for (unsigned char C = '0'; C <= '9'; ++C)
    Digits.set(C);
  Digits.finalize();
  EXPECT_EQ(Digits.NumRanges, 1);
  EXPECT_EQ(Digits.Lo[0], '0');
  EXPECT_EQ(Digits.Hi[0], '9');

  // A maximally fragmented set must fall back to the bitmap kernel.
  SkipSet Odd;
  for (int C = 1; C < 40; C += 2)
    Odd.set(static_cast<unsigned char>(C));
  Odd.finalize();
  EXPECT_EQ(Odd.NumRanges, 0);
  EXPECT_FALSE(Odd.empty());
}

TEST(RunSkipDiffTest, RunsStraddlingBlockWidths) {
  // Atom and whitespace runs of every length around the 8-byte word and
  // 16-byte SIMD boundaries, scanned by every kernel.
  Rig R(makeSexpGrammar());
  for (int L = 1; L <= 40; ++L) {
    std::string Atom(L, 'a');
    std::string Ws(L, ' ');
    R.check("(" + Atom + ")");
    R.check("(" + Ws + Atom + Ws + ")");
    R.check(Atom);
    R.check("(" + Atom + " " + Atom + ")");
    // Run ending exactly at end-of-input, and input ending mid-run.
    R.check(Atom + Ws);
    R.check("(" + Atom); // reject: unclosed
  }
}

TEST(RunSkipDiffTest, JsonStringAndNumberRuns) {
  Rig R(makeJsonGrammar());
  for (int L = 1; L <= 40; ++L) {
    std::string Key(L, 'k');
    std::string Num(L, '7');
    R.check("{\"" + Key + "\": 1}");
    R.check("[" + Num + "]");
    R.check("[-" + Num + "." + Num + "]");
    R.check("[\"" + std::string(L, ' ') + "\"]"); // spaces inside a string
  }
}

TEST(RunSkipDiffTest, EofInsideSkipAttemptStillFindsTokenMatch) {
  // Adversarial lexer: the skip regex continues past its accept with a
  // byte that also starts a token (" (-!)?" vs dash "-"). Ending the
  // input inside the speculative skip attempt ("x -") forces the scan
  // to rescan the suffix after the committed whitespace — the in-place
  // F2 rescan must behave identically at end-of-input and on a dead
  // transition.
  auto Def = std::make_shared<GrammarDef>("skipdash");
  Lang &L = *Def->L;
  TokenId Atom = Def->Lexer->rule("[a-z]+", "atom");
  TokenId Dash = Def->Lexer->rule("-", "dash");
  Def->Lexer->skip(" (-!)?");
  Def->Root = L.map(
      L.seq(L.tok(Atom), L.alt(L.eps(), L.tok(Dash))),
      [](ParseContext &, Value *) { return Value::unit(); }, "ignore");
  Rig R(Def);
  EXPECT_TRUE(R.check("x -"));  // EOF inside " -!" attempt; dash matches
  EXPECT_TRUE(R.check("x -!")); // whole " -!" is whitespace; eps branch
  EXPECT_TRUE(R.check("x "));   // EOF exactly at the whitespace accept
  EXPECT_TRUE(R.check("x- "));
  R.check("x -! -");            // ws, then EOF inside a second attempt
  R.check("x !");               // reject identically everywhere
}

TEST(RunSkipDiffTest, DispatchTierInvariantsHoldOnEveryMachine) {
  // The first-byte dispatch tables are the transition rows under the
  // dispatch-tier id encoding; the fast paths are sound only if every
  // state's id range matches its accept kind and outgoing shape. Pin the
  // encoding structurally for every benchmark machine.
  for (auto &Def : allBenchmarkGrammars()) {
    auto P = compileFlap(Def);
    ASSERT_TRUE(P.ok()) << P.error();
    const CompiledParser &M = P->M;
    ASSERT_LE(0, M.NumPureSkip);
    ASSERT_LE(M.NumPureSkip, M.NumSelfSkip);
    ASSERT_LE(M.NumSelfSkip, M.NumTermAcc);
    ASSERT_LE(M.NumTermAcc, M.NumPureAcc);
    ASSERT_LE(M.NumPureAcc, M.NumAccept);
    ASSERT_LE(M.NumAccept, M.numStates());
    for (int32_t S = 0; S < M.numStates(); ++S) {
      bool Any = false, Other = false;
      for (int C = 0; C < 256; ++C) {
        int16_t D = M.Trans16[static_cast<size_t>(S) * 256 + C];
        if (D < 0)
          continue;
        Any = true;
        Other |= D != S;
      }
      int32_t A = M.AcceptCont[S];
      bool SelfSkip = A >= 0 && M.Conts[A].SelfSkip;
      SCOPED_TRACE(Def->Name + " state " + std::to_string(S));
      EXPECT_EQ(A >= 0, S < M.NumAccept);
      EXPECT_EQ(SelfSkip, S < M.NumSelfSkip);
      if (S < M.NumPureSkip)
        EXPECT_FALSE(Other); // pure self-skip run: outgoing ⊆ self-loop
      else if (S < M.NumSelfSkip)
        EXPECT_TRUE(Other);
      else if (S < M.NumTermAcc)
        EXPECT_FALSE(Any); // terminal accept: no outgoing at all
      else if (S < M.NumPureAcc) {
        EXPECT_TRUE(Any); // pure accepting run: nonempty self-loop only
        EXPECT_FALSE(Other);
      } else if (S < M.NumAccept)
        EXPECT_TRUE(Other);
      // Skip metadata agrees with the self-loop row.
      for (int C = 0; C < 256; ++C)
        EXPECT_EQ(M.Skip[S].test(static_cast<unsigned char>(C)),
                  M.Trans16[static_cast<size_t>(S) * 256 + C] == S)
            << "byte " << C;
    }
  }
}

TEST(RunSkipDiffTest, StructuralTokenDenseInputs) {
  // json's structural bytes are terminal-accepting: the lexeme is
  // decided by the first-byte dispatch load alone. Hammer the dispatch
  // path with lexemes that are all one byte, with and without
  // whitespace between them, and with truncations ending exactly on a
  // dispatch byte.
  Rig R(makeJsonGrammar());
  R.check("[]");
  R.check("{}");
  R.check("[[[[[[[[]]]]]]]]");
  R.check("[[],[],[],[]]");
  R.check("[1,2,3,4,5,6,7,8,9]");
  R.check("{\"a\":{},\"b\":[{},{}]}");
  R.check("[ [ ] , [ ] ]");
  R.check("[true,false,null]");
  for (int N = 1; N <= 24; ++N) {
    std::string In = "[";
    for (int I = 0; I < N; ++I)
      In += I % 2 ? std::string("{},") : std::string("[],");
    In += "0]";
    R.check(In);
    R.check(In.substr(0, In.size() - 1)); // reject: cut on a terminal
  }
}

TEST(RunSkipDiffTest, TerminalVsLongerTokenClassification) {
  // A token that is a strict prefix of another ("a" / "ab" / "abc"):
  // the state after 'a' accepts *with* outgoing transitions, so it must
  // not be classified terminal — ending the input there must still
  // produce the shorter match everywhere. The "num" rule adds a pure
  // accepting run alongside.
  auto Def = std::make_shared<GrammarDef>("prefixy");
  Lang &L = *Def->L;
  TokenId A = Def->Lexer->rule("a", "a");
  TokenId Ab = Def->Lexer->rule("ab", "ab");
  TokenId Abc = Def->Lexer->rule("abc", "abc");
  TokenId Num = Def->Lexer->rule("[0-9]+", "num");
  Def->Lexer->skip("[ ]");
  Px Tok = L.alt(L.alt(L.tok(A), L.tok(Ab)), L.alt(L.tok(Abc), L.tok(Num)));
  Def->Root = L.mapConst(L.seq(Tok, L.alt(Tok, L.eps())), Value::integer(1),
                         "one");
  Rig R(Def);
  for (const char *In :
       {"a", "ab", "abc", "a a", "ab a", "abc ab", "a 1", "ab 12",
        "abc 123", "1 a", "12 ab", "123 abc", "a ab", "abcd", "abca",
        "a  b", "ab abc", "1", "12", "a b"})
    R.check(In);
  // Truncation of every prefix: end-of-input inside the a/ab/abc chain.
  for (size_t Cut = 0; Cut <= 7; ++Cut)
    R.check(std::string("abc abc").substr(0, Cut));
}

TEST(RunSkipDiffTest, AllGrammarsOnGeneratedCorpora) {
  for (auto &Def : allBenchmarkGrammars()) {
    Rig R(Def);
    for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
      Workload W = genWorkload(Def->Name, Seed, 4000 + Seed * 3000);
      EXPECT_TRUE(R.check(W.Input)) << Def->Name << " seed " << Seed;
    }
  }
}

TEST(RunSkipDiffTest, MutationFuzz) {
  // Random byte edits: every kernel must still agree, accept or reject.
  Rng Rand(42);
  for (auto &Def : allBenchmarkGrammars()) {
    Rig R(Def);
    Workload W = genWorkload(Def->Name, 9, 3000);
    for (int Round = 0; Round < 60; ++Round) {
      std::string In = W.Input;
      int Edits = 1 + static_cast<int>(Rand.below(3));
      for (int E = 0; E < Edits; ++E) {
        size_t At = Rand.below(In.size());
        switch (Rand.below(3)) {
        case 0:
          In[At] = static_cast<char>(Rand.below(128));
          break;
        case 1:
          In.erase(At, 1 + Rand.below(4));
          break;
        default:
          In.insert(At, 1 + Rand.below(3),
                    "(){}[]\", \n0a"[Rand.below(12)]);
          break;
        }
        if (In.empty())
          In = "x";
      }
      R.check(In);
    }
  }
}

TEST(RunSkipDiffTest, TruncationSweep) {
  // Every prefix boundary near the start and end of a small corpus —
  // exercises end-of-input inside runs, inside lexemes, and inside
  // trailing whitespace.
  for (auto &Def : allBenchmarkGrammars()) {
    Rig R(Def);
    Workload W = genWorkload(Def->Name, 5, 600);
    size_t N = W.Input.size();
    for (size_t Cut = 0; Cut <= N; Cut += (Cut < 40 || N - Cut < 40) ? 1 : 13)
      R.check(std::string_view(W.Input).substr(0, Cut));
  }
}

} // namespace
