//===- tests/PropertyTest.cpp - Randomized property tests ----------------------===//
//
// Part of flap-cpp, a C++ reproduction of "flap: A Deterministic Parser
// with Fused Lexing" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// Random well-typed CFEs (generated from the combinators, rejection-
/// sampled through the type checker) are pushed through the entire
/// pipeline and checked against the paper's theorems:
///
///  - Theorem 3.3/3.7: normalization succeeds and yields DGNF;
///  - Theorem 3.8: the normalized language equals the denotation
///    (bounded enumeration);
///  - Theorem 3.1: every derivable word has exactly one derivation;
///  - staging is invisible: the compiled machine accepts exactly the
///    words of the expansion relation, rendered through a lexer.
///
//===----------------------------------------------------------------------===//

#include "cfe/Combinators.h"
#include "core/Expand.h"
#include "core/Normalize.h"
#include "core/Validate.h"
#include "engine/Pipeline.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace flap;

namespace {

constexpr int NumToks = 4; // tokens "a".."d", lexed as single chars

/// Generates a random CFE of bounded depth. All parsers have width 1
/// (integers counting consumed tokens) so composition is unrestricted.
class CfeGen {
public:
  CfeGen(Lang &L, Rng &R) : L(L), R(R) {
    for (int T = 0; T < NumToks; ++T)
      Toks.push_back(static_cast<TokenId>(T));
  }

  Px gen(int Depth, bool AllowVars) {
    unsigned Pick = Depth <= 0 ? R.below(2) : R.below(10);
    switch (Pick) {
    case 0:
    case 1:
      return !Vars.empty() && AllowVars && R.chance(1, 3) ? pickVar()
                                                          : genTok();
    case 2:
      return L.eps(Value::integer(0), "z");
    case 3:
    case 4:
    case 5:
      return L.seqMap(gen(Depth - 1, AllowVars), gen(Depth - 1, true),
                      addFn(), "+");
    case 6:
    case 7:
      return L.alt(gen(Depth - 1, AllowVars), gen(Depth - 1, AllowVars));
    default:
      return L.fix([&](Px Self) {
        Vars.push_back(Self);
        Px Body = gen(Depth - 1, AllowVars);
        Vars.pop_back();
        return Body;
      });
    }
  }

private:
  Px genTok() {
    TokenId T = Toks[R.below(Toks.size())];
    return L.map(
        T == 0 ? L.tok(T) : L.tok(T), // keep shape uniform
        [](ParseContext &, Value *) { return Value::integer(1); }, "t");
  }

  Px pickVar() { return Vars[R.below(Vars.size())]; }

  static ActionFn addFn() {
    return [](ParseContext &, Value *Args) {
      return Value::integer(Args[0].asInt() + Args[1].asInt());
    };
  }

  Lang &L;
  Rng &R;
  std::vector<TokenId> Toks;
  std::vector<Px> Vars;
};

/// One sampled well-typed grammar with its full pipeline.
struct Sample {
  std::shared_ptr<GrammarDef> Def;
  Px Root;
  Grammar G;
  bool Ok = false;
};

Sample trySample(Rng &R) {
  Sample S;
  S.Def = std::make_shared<GrammarDef>("prop");
  // Single-character tokens a..d separated by optional spaces.
  const char *Names[] = {"a", "b", "c", "d"};
  for (int T = 0; T < NumToks; ++T)
    S.Def->Lexer->rule(std::string(1, static_cast<char>('a' + T)),
                       Names[T]);
  S.Def->Lexer->skip(" ");
  CfeGen Gen(*S.Def->L, R);
  S.Root = Gen.gen(4, false);
  S.Def->Root = S.Root;
  if (!S.Def->L->check(S.Root).ok())
    return S;
  auto G = normalize(S.Def->L->Arena, S.Root.Id);
  if (!G.ok())
    return S;
  S.G = G.take();
  S.Ok = true;
  return S;
}

std::string renderWord(const std::vector<TokenId> &W, Rng &R) {
  std::string Out;
  for (TokenId T : W) {
    Out += static_cast<char>('a' + T);
    if (R.chance(1, 3))
      Out += ' ';
  }
  return Out;
}

TEST(PropertyTest, PipelineTheoremsOnRandomCfes) {
  Rng R(2024);
  int Accepted = 0;
  for (int Trial = 0; Trial < 400 && Accepted < 60; ++Trial) {
    Sample S = trySample(R);
    if (!S.Ok)
      continue;
    ++Accepted;

    // Theorem 3.7: the result is DGNF.
    Status V = validateDgnf(S.G, *S.Def->Toks);
    ASSERT_TRUE(V.ok()) << V.error() << "\n" << S.G.str(*S.Def->Toks);

    // Theorem 3.8 + 3.1, bounded at length 5.
    WordCounts Words;
    if (!expandWords(S.G, 5, Words, 1u << 18))
      continue; // frontier cap hit: skip the language comparison
    auto Denoted = denotationWords(S.Def->L->Arena, S.Root.Id, 5);
    std::vector<std::vector<TokenId>> Expanded;
    for (const auto &[W, Count] : Words) {
      EXPECT_EQ(Count, 1u) << "ambiguous derivation in DGNF";
      Expanded.push_back(W);
    }
    ASSERT_EQ(Expanded, Denoted) << S.G.str(*S.Def->Toks);

    // Staging invisibility: the machine accepts every derivable word...
    auto F = compileFlap(S.Def);
    ASSERT_TRUE(F.ok()) << F.error();
    size_t Checked = 0;
    for (const auto &W : Expanded) {
      if (++Checked > 40)
        break;
      std::string In = renderWord(W, R);
      EXPECT_TRUE(F->M.parse(In).ok())
          << "machine rejects derivable word '" << In << "'";
    }
    // ...and rejects random non-words.
    for (int K = 0; K < 20; ++K) {
      std::vector<TokenId> W;
      size_t Len = R.below(5);
      for (size_t I = 0; I < Len; ++I)
        W.push_back(static_cast<TokenId>(R.below(NumToks)));
      bool InLang =
          std::find(Expanded.begin(), Expanded.end(), W) != Expanded.end();
      if (W.size() <= 5) {
        std::string In = renderWord(W, R);
        EXPECT_EQ(F->M.parse(In).ok(), InLang)
            << "disagreement on '" << In << "'";
      }
    }
  }
  // The generator must actually produce a healthy number of well-typed
  // samples, or the property run is vacuous.
  EXPECT_GE(Accepted, 30);
}

TEST(PropertyTest, ValueAgreementOnRandomCfes) {
  // For accepted words, the staged machine's semantic value (token
  // count via the + actions) equals the word length.
  Rng R(555);
  int Accepted = 0;
  for (int Trial = 0; Trial < 200 && Accepted < 25; ++Trial) {
    Sample S = trySample(R);
    if (!S.Ok)
      continue;
    ++Accepted;
    auto F = compileFlap(S.Def);
    ASSERT_TRUE(F.ok());
    WordCounts Words;
    if (!expandWords(S.G, 5, Words, 1u << 18))
      continue;
    size_t Checked = 0;
    for (const auto &[W, Count] : Words) {
      if (++Checked > 25)
        break;
      std::string In = renderWord(W, R);
      auto Res = F->M.parse(In);
      ASSERT_TRUE(Res.ok()) << In;
      EXPECT_EQ(Res->asInt(), static_cast<int64_t>(W.size())) << In;
    }
  }
  EXPECT_GE(Accepted, 10);
}

} // namespace
