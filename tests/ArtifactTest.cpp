//===- tests/ArtifactTest.cpp - Compiled-grammar artifact suite ----------===//
//
// Part of flap-cpp, a C++ reproduction of "flap: A Deterministic Parser
// with Fused Lexing" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// The artifact tier's contract (engine/Artifact.h), tested four ways:
///
///   1. Round-trip differential: for every benchmark grammar, a machine
///      loaded from its serialized blob — tables *borrowed* from the
///      mapped bytes, ε-programs rebuilt, action table rebound — must be
///      observationally identical to the machine that compiled it, in
///      all four engine modes: whole-buffer values, streaming (several
///      chunk sizes), sharded record runs, and sync-token recovery over
///      corrupted input (values AND structured diagnostics).
///
///   2. Corruption fuzz: truncations at every interesting length,
///      flipped header fields, wrong-endian magic, and payload bit
///      flips must all be rejected with a structured "artifact:" error
///      — never a crash, never tables reaching the hot loops. Flips
///      re-checksummed with rehashArtifact() model a *malicious* blob:
///      those must either be rejected (usually by the Verify audit, the
///      load-time trust boundary) or produce a machine the engine
///      survives (parse may fail; it may not crash) — the same
///      discipline VerifyTest's table-mutation harness enforces.
///
///   3. The on-disk cache: miss → compile+write, hit → checksum-only
///      reload, corrupt/stale file → silently deleted and recompiled.
///
///   4. Serving-tier hot reload: generations swap under concurrent
///      submitters with zero dropped or misparsed replies, in-flight
///      batches finish on their snapshot's tables, and the old
///      artifact's mapping is unmapped (weak_ptr expiry) once the last
///      borrower drains.
///
/// Plus the shard-layer context factory (ShardOptions::MakeCtx /
/// MergeCtx): per-shard contexts for csv/pgn/ppm merged in input order
/// must equal the sequential shared-context parse.
///
//===----------------------------------------------------------------------===//

#include "engine/Artifact.h"

#include "engine/Serve.h"
#include "engine/Shard.h"
#include "engine/Stream.h"
#include "engine/Verify.h"
#include "grammars/Grammars.h"
#include "lexer/CompiledLexer.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

using namespace flap;

namespace {

//===--------------------------------------------------------------------===//
// Rig: one grammar compiled in-process and loaded back from its blob
//===--------------------------------------------------------------------===//

struct Rig {
  std::shared_ptr<GrammarDef> Def;
  FlapParser P;          ///< the compiled baseline
  LoadedArtifact A;      ///< the blob-loaded machine (borrowed tables)
  std::string Blob;      ///< the serialized bytes (fuzz substrate)
  bool Ready = false;

  explicit Rig(std::shared_ptr<GrammarDef> D, bool OnDisk = false)
      : Def(std::move(D)) {
    auto R = Def->HasRecord ? compileFlapRecords(Def) : compileFlap(Def);
    if (!R.ok()) {
      ADD_FAILURE() << Def->Name << ": compile failed: " << R.error();
      return;
    }
    P = R.take();
    CompiledLexer L(*Def->Re, P.Canon);
    Blob = serializeArtifact(P, &L);

    Result<LoadedArtifact> LA = Err("unset");
    if (OnDisk) {
      const std::string Path =
          testing::TempDir() + "/" + Def->Name + "-roundtrip.flapart";
      Status St = writeArtifact(P, Path, &L);
      if (!St.ok()) {
        ADD_FAILURE() << Def->Name << ": write failed: " << St.error();
        return;
      }
      LA = loadArtifact(Path, Def->L->Actions); // untrusted: full audit
    } else {
      LA = loadArtifact(MappedBlob::fromBuffer(Blob), Def->L->Actions);
    }
    if (!LA.ok()) {
      ADD_FAILURE() << Def->Name << ": load failed: " << LA.error();
      return;
    }
    A = LA.take();
    Ready = true;
  }
};

std::string renderValues(const std::vector<Value> &Vs) {
  std::string S;
  for (const Value &V : Vs)
    S += V.str() + "\n";
  return S;
}

std::string renderResult(const Result<Value> &R) {
  return R.ok() ? "ok: " + R.value().str() : "err: " + R.error();
}

/// A multi-record corpus with split-hostile internals (strings
/// containing close-delimiters, quoted CRLFs).
std::string recordCorpus(const std::string &Name, size_t Records) {
  std::string S;
  for (size_t I = 0; I < Records; ++I) {
    const std::string N = std::to_string(I);
    if (Name == "json")
      S += "{\"k" + N + "\": [" + N + ", {\"s\": \"a}b]c\"}], \"t\": true}\n";
    else if (Name == "sexp")
      S += "(rec" + N + " (a b) ((c) d))\n";
    else if (Name == "csv")
      S += "f" + N + ",\"x,y\r\nz\"," + N + "\r\n";
    else if (Name == "pgn")
      S += "[Tag \"v" + N + "\"]\n1. e4 e5 2. Nf3 Nc6 1-0\n";
    else if (Name == "ppm")
      S += "P3 2 1 255  1 2 3  9 8 7\n";
    else // arith
      S += "(1+2)*" + N + " + 3;\n";
  }
  return S;
}

/// Deterministically damages \p In for the recovery-mode differential.
std::string corrupt(std::string In) {
  if (In.size() < 16)
    return In;
  In[In.size() / 4] = '\x01';
  In[In.size() / 2] = '~';
  In.erase(3 * In.size() / 4, 1);
  return In;
}

void expectStreamEq(const std::string &Tag, const CompiledParser &Base,
                    const CompiledParser &Loaded, std::string_view Input,
                    size_t ChunkBytes) {
  StreamParser SB(Base), SL(Loaded);
  StreamStatus StB = StreamStatus::NeedData, StL = StreamStatus::NeedData;
  for (size_t Off = 0; Off < Input.size(); Off += ChunkBytes) {
    const std::string_view Chunk = Input.substr(Off, ChunkBytes);
    StB = SB.feed(Chunk);
    StL = SL.feed(Chunk);
    ASSERT_EQ(static_cast<int>(StB), static_cast<int>(StL))
        << Tag << " feed at " << Off;
    if (StB == StreamStatus::Error)
      break;
  }
  if (StB != StreamStatus::Error) {
    StB = SB.finish();
    StL = SL.finish();
    ASSERT_EQ(static_cast<int>(StB), static_cast<int>(StL)) << Tag;
  }
  EXPECT_EQ(renderResult(SB.take()), renderResult(SL.take())) << Tag;
}

void expectShardEq(const std::string &Tag, ShardParser &Base,
                   ShardParser &Loaded, std::string_view Corpus) {
  const std::vector<size_t> Splits = Base.planSplits(Corpus, 3);
  const ShardedValues B = Base.parseValuesAt(Corpus, Splits);
  const ShardedValues L = Loaded.parseValuesAt(Corpus, Splits);
  ASSERT_EQ(B.Ok, L.Ok) << Tag;
  EXPECT_EQ(B.NumRecords, L.NumRecords) << Tag;
  EXPECT_EQ(B.ErrMsg, L.ErrMsg) << Tag;
  ASSERT_EQ(renderValues(B.Values), renderValues(L.Values)) << Tag;
}

void expectRecoverEq(const std::string &Tag, const RecoveredParse &B,
                     const RecoveredParse &L) {
  EXPECT_EQ(B.Truncated, L.Truncated) << Tag;
  ASSERT_EQ(renderValues(B.Values), renderValues(L.Values)) << Tag;
  ASSERT_EQ(B.Errors.size(), L.Errors.size()) << Tag;
  for (size_t I = 0; I < B.Errors.size(); ++I)
    EXPECT_TRUE(B.Errors[I] == L.Errors[I])
        << Tag << " diagnostic " << I << ": " << B.Errors[I].message()
        << " vs " << L.Errors[I].message();
}

//===--------------------------------------------------------------------===//
// 1. Round-trip differential, all grammars × all four modes
//===--------------------------------------------------------------------===//

class ArtifactRoundTrip : public testing::TestWithParam<const char *> {};

TEST_P(ArtifactRoundTrip, AllModesMatchCompiledMachine) {
  const std::string Name = GetParam();
  Rig R(([&] {
          for (auto &D : allBenchmarkGrammars())
            if (D->Name == Name)
              return D;
          return std::shared_ptr<GrammarDef>();
        })(),
        /*OnDisk=*/true);
  ASSERT_TRUE(R.Ready);
  const CompiledParser &Base = R.P.M;
  const CompiledParser &Loaded = R.A.M;

  // Loaded scalars and entry points mirror the compiled machine.
  EXPECT_EQ(R.A.Info.GrammarName, Name);
  EXPECT_EQ(Loaded.Start, Base.Start);
  EXPECT_EQ(R.A.Entries, R.P.Entries);
  EXPECT_TRUE(R.A.Lexer != nullptr);

  const Workload W = genWorkload(Name, /*Seed=*/42, /*TargetBytes=*/1 << 14);
  const std::string Corpus = recordCorpus(Name, 40);

  // Mode 1: whole-buffer values. Context grammars get one fresh context
  // per parse so baseline and loaded runs cannot contaminate each other.
  for (const std::string &Input : {W.Input, Corpus}) {
    std::shared_ptr<void> CtxB =
        R.Def->NewCtx ? R.Def->NewCtx() : nullptr;
    std::shared_ptr<void> CtxL =
        R.Def->NewCtx ? R.Def->NewCtx() : nullptr;
    const Result<Value> VB = Base.parse(Input, CtxB.get());
    const Result<Value> VL = Loaded.parse(Input, CtxL.get());
    ASSERT_EQ(renderResult(VB), renderResult(VL)) << Name;
  }

  // Mode 2: streaming, byte-sized through page-sized chunks.
  for (size_t Chunk : {size_t(7), size_t(257), size_t(4096)})
    expectStreamEq(Name + "/stream/" + std::to_string(Chunk), Base, Loaded,
                   W.Input, Chunk);

  // Mode 3: sharded record runs off the artifact's record entry.
  const NtId RecB = recordEntry(R.P);
  const NtId RecL = R.A.recordEntry();
  ASSERT_EQ(RecB, RecL) << Name;
  if (RecL != NoNt) {
    ShardOptions SO;
    SO.Threads = 3;
    SO.MinShardBytes = 1; // force real sharding on small corpora
    ShardParser SPB(Base, RecB, SO), SPL(Loaded, RecL, SO);
    expectShardEq(Name + "/shard", SPB, SPL, Corpus);
  }

  // Mode 4: sync-token recovery over damaged input — identical values
  // and identical structured diagnostics.
  {
    const std::string Bad = corrupt(Corpus);
    ParseScratch ScB, ScL;
    RecoverOptions RO;
    RO.MaxErrors = 8;
    std::shared_ptr<void> CtxB =
        R.Def->NewCtx ? R.Def->NewCtx() : nullptr;
    std::shared_ptr<void> CtxL =
        R.Def->NewCtx ? R.Def->NewCtx() : nullptr;
    const RecoveredParse RB = Base.parseRecover(Bad, ScB, CtxB.get(), RO);
    const RecoveredParse RL = Loaded.parseRecover(Bad, ScL, CtxL.get(), RO);
    expectRecoverEq(Name + "/recover", RB, RL);
  }
}

INSTANTIATE_TEST_SUITE_P(AllGrammars, ArtifactRoundTrip,
                         testing::Values("json", "sexp", "arith", "pgn",
                                         "ppm", "csv"),
                         [](const testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });

//===--------------------------------------------------------------------===//
// 2. Corruption fuzz: every damaged blob is rejected structurally
//===--------------------------------------------------------------------===//

TEST(ArtifactCorruption, TruncationsAreRejected) {
  Rig R(makeJsonGrammar());
  ASSERT_TRUE(R.Ready);
  // Every structurally interesting prefix: empty, mid-header, exactly
  // the header, mid-section-table, various payload cuts, all-but-one.
  std::vector<size_t> Cuts = {0,  1,  7,  sizeof(ArtifactHeader) - 1,
                              sizeof(ArtifactHeader),
                              sizeof(ArtifactHeader) + 3,
                              R.Blob.size() / 4, R.Blob.size() / 2,
                              R.Blob.size() - 1};
  for (size_t Cut : Cuts) {
    auto A = loadArtifact(MappedBlob::fromBuffer(R.Blob.substr(0, Cut)),
                          R.Def->L->Actions);
    ASSERT_FALSE(A.ok()) << "truncation at " << Cut << " loaded";
    EXPECT_EQ(A.error().rfind("artifact:", 0), 0u)
        << "unstructured error: " << A.error();
  }
}

TEST(ArtifactCorruption, HeaderFieldFlipsAreRejected) {
  Rig R(makeJsonGrammar());
  ASSERT_TRUE(R.Ready);

  auto expectRejected = [&](std::string Blob, const char *What,
                            bool Rehash) {
    if (Rehash)
      rehashArtifact(Blob); // checksum-consistent: the field check itself
                            // must fire, not the checksum
    auto A = loadArtifact(MappedBlob::fromBuffer(std::move(Blob)),
                          R.Def->L->Actions);
    ASSERT_FALSE(A.ok()) << What << " loaded";
    EXPECT_EQ(A.error().rfind("artifact:", 0), 0u) << What;
  };

  ArtifactHeader H;
  std::memcpy(&H, R.Blob.data(), sizeof(H));
  auto withHeader = [&](ArtifactHeader M) {
    std::string B = R.Blob;
    std::memcpy(&B[0], &M, sizeof(M));
    return B;
  };

  ArtifactHeader M = H;
  M.Magic[0] = 'F';
  expectRejected(withHeader(M), "bad magic", true);

  M = H; // a blob written on the other endianness
  M.EndianTag = __builtin_bswap32(M.EndianTag);
  expectRejected(withHeader(M), "wrong-endian tag", true);

  M = H;
  M.FormatVersion = ArtifactFormatVersion + 1;
  expectRejected(withHeader(M), "future version", true);

  M = H;
  M.TraitsWord ^= 1;
  expectRejected(withHeader(M), "ABI traits mismatch", true);

  M = H;
  M.ActionHash ^= 1;
  expectRejected(withHeader(M), "action hash mismatch", true);

  M = H;
  M.NumSections = 10000;
  expectRejected(withHeader(M), "implausible section count", true);

  M = H;
  M.FileHash ^= 1; // and NOT rehashed: the checksum check itself
  expectRejected(withHeader(M), "bad checksum", false);
}

TEST(ArtifactCorruption, PayloadBitFlipsFailTheChecksum) {
  Rig R(makeJsonGrammar());
  ASSERT_TRUE(R.Ready);
  // A deterministic sweep of single-bit flips across the whole file
  // (header, section table, tables, string blobs).
  for (size_t I = 0; I < 200; ++I) {
    const size_t Byte = (I * 2654435761u) % R.Blob.size();
    std::string B = R.Blob;
    B[Byte] = static_cast<char>(B[Byte] ^ (1u << (I % 8)));
    auto A =
        loadArtifact(MappedBlob::fromBuffer(std::move(B)), R.Def->L->Actions);
    ASSERT_FALSE(A.ok()) << "bit flip at byte " << Byte << " loaded";
    EXPECT_EQ(A.error().rfind("artifact:", 0), 0u);
  }
}

TEST(ArtifactCorruption, MaliciousBlobsAreCaughtOrSurvived) {
  Rig R(makeJsonGrammar());
  ASSERT_TRUE(R.Ready);
  const Workload W = genWorkload("json", 7, 1 << 12);
  // A checksum-consistent adversary: flip bits anywhere, re-checksum.
  // The Verify audit (untrusted loads) is now the trust boundary: the
  // blob either fails to load with a structured error, or yields a
  // machine whose parse may fail but must not crash or hang.
  size_t Rejected = 0, Loaded = 0;
  for (size_t I = 0; I < 120; ++I) {
    const size_t Byte =
        sizeof(ArtifactHeader) + (I * 40503u) % (R.Blob.size() -
                                                 sizeof(ArtifactHeader));
    std::string B = R.Blob;
    B[Byte] = static_cast<char>(B[Byte] ^ (1u << (I % 8)));
    rehashArtifact(B);
    auto A =
        loadArtifact(MappedBlob::fromBuffer(std::move(B)), R.Def->L->Actions);
    if (!A.ok()) {
      EXPECT_EQ(A.error().rfind("artifact:", 0), 0u) << A.error();
      ++Rejected;
      continue;
    }
    ++Loaded;
    (void)A->M.parse(W.Input, nullptr); // must return, cleanly or not
  }
  // The sweep must actually exercise both the audit and the engine; a
  // fuzzer that only ever hits one side proves nothing about the other.
  EXPECT_GT(Rejected, 0u);
  EXPECT_GT(Loaded, 0u);
}

TEST(ArtifactCorruption, ActionTableMismatchIsRejected) {
  Rig R(makeJsonGrammar());
  ASSERT_TRUE(R.Ready);
  auto Csv = makeCsvGrammar();
  auto A = loadArtifact(MappedBlob::fromBuffer(R.Blob), Csv->L->Actions);
  ASSERT_FALSE(A.ok());
  EXPECT_NE(A.error().find("action table"), std::string::npos) << A.error();
}

//===--------------------------------------------------------------------===//
// 3. The on-disk cache
//===--------------------------------------------------------------------===//

TEST(ArtifactCache, MissHitCorruptRecompile) {
  const std::string Dir = testing::TempDir() + "/flap-artifact-cache-test";
  auto Def = makeSexpGrammar();
  CacheOptions CO;
  CO.Dir = Dir;

  // Re-runnable: drop whatever a previous run of this test cached.
  {
    Result<CachedLoad> Pre = loadArtifactCached(Def, CO);
    ASSERT_TRUE(Pre.ok()) << Pre.error();
    ::remove(Pre->Path.c_str());
  }

  Result<CachedLoad> C1 = loadArtifactCached(Def, CO);
  ASSERT_TRUE(C1.ok()) << C1.error();
  EXPECT_FALSE(C1->Hit);
  EXPECT_GT(C1->CompileMs, 0.0);

  Result<CachedLoad> C2 = loadArtifactCached(Def, CO);
  ASSERT_TRUE(C2.ok()) << C2.error();
  EXPECT_TRUE(C2->Hit);
  EXPECT_EQ(C2->Path, C1->Path);

  // Both loads parse.
  const Workload W = genWorkload("sexp", 3, 1 << 10);
  EXPECT_EQ(renderResult(C1->A.M.parse(W.Input, nullptr)),
            renderResult(C2->A.M.parse(W.Input, nullptr)));

  // Damage the cached file: the next load must not serve it — it
  // recompiles, rewrites, and the file is healthy again.
  {
    FILE *F = fopen(C1->Path.c_str(), "r+b");
    ASSERT_TRUE(F != nullptr);
    fseek(F, static_cast<long>(sizeof(ArtifactHeader)) + 40, SEEK_SET);
    fputc(0x5A, F);
    fclose(F);
  }
  Result<CachedLoad> C3 = loadArtifactCached(Def, CO);
  ASSERT_TRUE(C3.ok()) << C3.error();
  EXPECT_FALSE(C3->Hit) << "served a corrupt cache file";
  Result<CachedLoad> C4 = loadArtifactCached(Def, CO);
  ASSERT_TRUE(C4.ok()) << C4.error();
  EXPECT_TRUE(C4->Hit);
}

//===--------------------------------------------------------------------===//
// 4. Hot reload in the serving tier
//===--------------------------------------------------------------------===//

TEST(ArtifactServe, HotReloadUnderConcurrentSubmitters) {
  // Two generations of the SAME grammar: gen A borrowed from an
  // artifact mapping, gen B owned by an in-process compile. Submitters
  // hammer the service while the main thread flips between them; every
  // reply must be accepted and correct regardless of which generation
  // served it, and gen A's mapping must unmap once its last borrower
  // drains.
  auto Def = makeJsonGrammar();
  auto PR = compileFlap(Def);
  ASSERT_TRUE(PR.ok()) << PR.error();
  auto P = std::make_shared<FlapParser>(PR.take());

  const std::string Path = testing::TempDir() + "/hot-reload.flapart";
  ASSERT_TRUE(writeArtifact(*P, Path).ok());
  Result<LoadedArtifact> LA = loadArtifact(Path, Def->L->Actions);
  ASSERT_TRUE(LA.ok()) << LA.error();
  auto A = std::make_shared<LoadedArtifact>(LA.take());
  std::weak_ptr<MappedBlob> MapAlive = A->Blob;

  const Workload W = genWorkload("json", 11, 1 << 10);
  const std::string_view Input = W.Input;
  const std::string ExpectOne = renderResult(P->M.parse(Input, nullptr));

  GrammarRegistry Reg;
  Reg.install("json", A->M, A->M.Start, A->keepAlive());

  {
    ServeOptions SO;
    SO.Threads = 3;
    ParseService Svc(Reg, "json", SO);

    std::atomic<bool> Stop{false};
    std::atomic<size_t> Replies{0}, Bad{0};
    std::vector<std::thread> Submitters;
    for (int T = 0; T < 4; ++T)
      Submitters.emplace_back([&] {
        while (!Stop.load(std::memory_order_relaxed)) {
          std::future<ServeReply> F =
              Svc.submit({Input, Input, Input});
          ServeReply Rep = F.get();
          if (!Rep.Accepted || Rep.Results.size() != 3) {
            ++Bad;
            continue;
          }
          for (const Result<Value> &V : Rep.Results)
            if (renderResult(V) != ExpectOne)
              ++Bad;
          ++Replies;
        }
      });

    // Flip generations while the submitters run: artifact ⇄ in-process.
    for (int Flip = 0; Flip < 20; ++Flip) {
      if (Flip & 1)
        Reg.install("json", A->M, A->M.Start, A->keepAlive());
      else
        Reg.install("json", P->M, P->M.Start, P);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    // Drop the artifact generation for good: final install is owned.
    Reg.install("json", P->M, P->M.Start, P);
    A.reset(); // registry + in-flight replies are now the only owners

    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    Stop = true;
    for (std::thread &T : Submitters)
      T.join();
    EXPECT_EQ(Bad.load(), 0u);
    EXPECT_GT(Replies.load(), 0u);
    Svc.shutdown();
  }

  // Every borrower has drained (service down, replies destroyed, the
  // artifact generation replaced): the mapping must be gone.
  EXPECT_TRUE(MapAlive.expired())
      << "old generation's mapping still alive after drain";
}

TEST(ArtifactServe, MissingGrammarIsRejectedNotCrashed) {
  GrammarRegistry Reg;
  ServeOptions SO;
  SO.Threads = 1;
  ParseService Svc(Reg, "nope", SO);
  ServeReply Rep = Svc.submit({std::string_view("x")}).get();
  EXPECT_FALSE(Rep.Accepted);
}

//===--------------------------------------------------------------------===//
// 5. Shard-layer per-shard context factory (csv/pgn/ppm)
//===--------------------------------------------------------------------===//

template <typename Ctx>
void shardCtxDifferential(const std::string &Name,
                          const std::function<void(Ctx &, const Ctx &)> &Fold,
                          const std::function<bool(const Ctx &,
                                                   const Ctx &)> &Same) {
  std::shared_ptr<GrammarDef> Def;
  for (auto &D : allBenchmarkGrammars())
    if (D->Name == Name)
      Def = D;
  ASSERT_TRUE(Def) << Name;
  auto R = compileFlapRecords(Def);
  ASSERT_TRUE(R.ok()) << R.error();
  FlapParser P = R.take();
  const NtId Rec = recordEntry(P);
  ASSERT_NE(Rec, NoNt) << Name;

  const std::string Corpus = recordCorpus(Name, 60);

  // Sequential truth: one shared context through a single-shard run.
  Ctx Seq;
  {
    ShardOptions SO;
    SO.Threads = 1;
    SO.User = &Seq;
    ShardParser SP(P.M, Rec, SO);
    const ShardedValues V = SP.parseValuesAt(Corpus, {});
    ASSERT_TRUE(V.Ok) << Name << ": " << V.ErrMsg;
  }

  // Parallel: fresh per-shard contexts, merged in input order.
  Ctx Par;
  {
    ShardOptions SO;
    SO.Threads = 3;
    SO.MinShardBytes = 1;
    SO.User = &Par;
    SO.MakeCtx = [] { return std::shared_ptr<void>(new Ctx()); };
    SO.MergeCtx = [&Fold](void *Accum, void *ShardCtx) {
      Fold(*static_cast<Ctx *>(Accum), *static_cast<Ctx *>(ShardCtx));
    };
    ShardParser SP(P.M, Rec, SO);
    // Planned splits AND forced wrong boundaries (mispredicted shards
    // must contribute their *re-parse* context, not the speculative
    // one).
    for (const std::vector<size_t> &Splits :
         {SP.planSplits(Corpus, 3),
          std::vector<size_t>{0, Corpus.size() / 3, Corpus.size() / 2}}) {
      Par = Ctx();
      const ShardedValues V = SP.parseValuesAt(Corpus, Splits);
      ASSERT_TRUE(V.Ok) << Name << ": " << V.ErrMsg;
      ASSERT_GT(V.Stats.Shards, 1u) << Name;
      EXPECT_TRUE(Same(Seq, Par)) << Name;
    }
  }
}

TEST(ShardCtxFactory, PgnTalliesMerge) {
  shardCtxDifferential<PgnCtx>(
      "pgn",
      [](PgnCtx &A, const PgnCtx &S) {
        A.White += S.White;
        A.Black += S.Black;
        A.Draw += S.Draw;
        A.Unknown += S.Unknown;
      },
      [](const PgnCtx &A, const PgnCtx &B) {
        return A.White == B.White && A.Black == B.Black &&
               A.Draw == B.Draw && A.Unknown == B.Unknown;
      });
}

TEST(ShardCtxFactory, PpmStatsMerge) {
  // ppm's record action OVERWRITES the context per image (grammars/
  // Ppm.cpp) — sequentially the context ends as the last record's
  // stats, so the fold is last-nonempty-shard-wins.
  shardCtxDifferential<PpmCtx>(
      "ppm",
      [](PpmCtx &A, const PpmCtx &S) {
        if (S.Samples != 0 || S.MaxSample != 0)
          A = S;
      },
      [](const PpmCtx &A, const PpmCtx &B) {
        return A.Samples == B.Samples && A.MaxSample == B.MaxSample;
      });
}

TEST(ShardCtxFactory, CsvConsistencyMerges) {
  shardCtxDifferential<CsvCtx>(
      "csv",
      [](CsvCtx &A, const CsvCtx &S) {
        if (S.FirstCols != -1) {
          if (A.FirstCols == -1)
            A.FirstCols = S.FirstCols;
          else if (A.FirstCols != S.FirstCols)
            A.Consistent = false;
        }
        A.Consistent = A.Consistent && S.Consistent;
      },
      [](const CsvCtx &A, const CsvCtx &B) {
        return A.FirstCols == B.FirstCols && A.Consistent == B.Consistent;
      });
}

//===--------------------------------------------------------------------===//
// Loaded-blob audit parity: the trust boundary sees what the pipeline saw
//===--------------------------------------------------------------------===//

TEST(ArtifactVerify, LoadedTablesPassTheFullAudit) {
  for (auto &Def : allBenchmarkGrammars()) {
    Rig R(Def);
    ASSERT_TRUE(R.Ready) << Def->Name;
    VerifyReport VR = verifyCompiledParser(R.A.M);
    EXPECT_TRUE(VR.ok()) << Def->Name << ": " << VR.summary();
    ASSERT_TRUE(R.A.Lexer != nullptr) << Def->Name;
    VerifyReport LR = verifyCompiledLexer(*R.A.Lexer);
    EXPECT_TRUE(LR.ok()) << Def->Name << ": " << LR.summary();
  }
}

} // namespace
