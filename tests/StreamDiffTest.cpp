//===- tests/StreamDiffTest.cpp - Chunked streaming differential fuzzing ------===//
//
// Part of flap-cpp, a C++ reproduction of "flap: A Deterministic Parser
// with Fused Lexing" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// The push-style streaming parser (engine/Stream.h) must be
/// observationally identical to a whole-buffer parse of the concatenated
/// chunks, for *every* way of cutting the input: byte-identical `Value`
/// results (token spans carry absolute stream offsets), identical error
/// strings with absolute offsets, and identical accept/reject decisions
/// in recognize mode. Cuts deliberately land inside lexemes, inside
/// committed and uncommitted F2 whitespace, and inside runs consumed by
/// the 8-byte word / 16-byte SIMD skip kernels — the suspension must be
/// invisible no matter which kernel the run straddles.
///
/// The streaming lexer (lexer/CompiledLexer.h StreamLexer) gets the same
/// treatment against lexAll().
///
//===----------------------------------------------------------------------===//

#include "engine/Pipeline.h"
#include "engine/Stream.h"
#include "grammars/Grammars.h"
#include "lexer/CompiledLexer.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace flap;

namespace {

/// One grammar under chunked differential test.
struct StreamRig {
  std::shared_ptr<GrammarDef> Def;
  FlapParser P;

  explicit StreamRig(std::shared_ptr<GrammarDef> D) : Def(std::move(D)) {
    auto R = compileFlap(Def);
    if (!R.ok()) {
      ADD_FAILURE() << "compile failed: " << R.error();
      return;
    }
    P = R.take();
  }

  void *fresh(std::shared_ptr<void> &C) {
    if (Def->NewCtx)
      C = Def->NewCtx();
    return C.get();
  }

  /// Streams \p In cut at the (sorted, in-range) offsets \p Cuts.
  Result<Value> streamParse(std::string_view In,
                            const std::vector<size_t> &Cuts,
                            size_t *CarryHW = nullptr) {
    std::shared_ptr<void> C;
    StreamOptions O;
    O.User = fresh(C);
    StreamParser SP(P.M, O);
    size_t Prev = 0;
    for (size_t Cut : Cuts) {
      SP.feed(In.substr(Prev, Cut - Prev));
      Prev = Cut;
    }
    SP.feed(In.substr(Prev));
    SP.finish();
    if (CarryHW)
      *CarryHW = SP.carryHighWater();
    // On success every byte was consumed (errors reject later chunks).
    if (SP.status() == StreamStatus::Done)
      EXPECT_EQ(SP.streamedBytes(), In.size());
    return SP.take();
  }

  /// Whole-buffer vs streamed-at-Cuts: same verdict, same value, same
  /// error string; recognize-mode stream agrees too.
  bool checkSplits(std::string_view In, const std::vector<size_t> &Cuts) {
    std::shared_ptr<void> C;
    Result<Value> Whole = P.M.parse(In, fresh(C));
    Result<Value> Str = streamParse(In, Cuts);
    EXPECT_EQ(Whole.ok(), Str.ok())
        << Def->Name << ": stream vs whole on '" << In << "' (" << Cuts.size()
        << " cuts)";
    if (Whole.ok() && Str.ok()) {
      EXPECT_EQ(*Whole, *Str) << Def->Name << " value drift on '" << In
                              << "'";
    } else if (!Whole.ok() && !Str.ok()) {
      EXPECT_EQ(Whole.error(), Str.error())
          << Def->Name << " error drift on '" << In << "'";
    }

    StreamOptions RO;
    RO.Recognize = true;
    StreamParser SR(P.M, RO);
    size_t Prev = 0;
    for (size_t Cut : Cuts) {
      SR.feed(In.substr(Prev, Cut - Prev));
      Prev = Cut;
    }
    SR.feed(In.substr(Prev));
    EXPECT_EQ(SR.finish() == StreamStatus::Done, Whole.ok())
        << Def->Name << ": streaming recognize vs parse on '" << In << "'";
    return Whole.ok();
  }

  /// Every two-way split of \p In, plus every-byte chunks.
  void sweepAllSplits(std::string_view In) {
    for (size_t Cut = 0; Cut <= In.size(); ++Cut)
      checkSplits(In, {Cut});
    std::vector<size_t> Every;
    for (size_t Cut = 1; Cut < In.size(); ++Cut)
      Every.push_back(Cut);
    checkSplits(In, Every);
  }
};

TEST(StreamDiffTest, AllGrammarsAllTwoWaySplits) {
  for (auto &Def : allBenchmarkGrammars()) {
    StreamRig R(Def);
    Workload W = genWorkload(Def->Name, 11, 400);
    R.sweepAllSplits(W.Input);
  }
}

TEST(StreamDiffTest, SplitsInsideSimdRunSkipBlocks) {
  // Atom and whitespace runs long enough that the scan is inside the
  // 16-byte SIMD classifier (and the 8-byte word kernel) when the chunk
  // ends: every cut of every run length around both block widths.
  StreamRig R(makeSexpGrammar());
  for (int Run : {7, 8, 9, 15, 16, 17, 24, 31, 32, 33, 40}) {
    std::string Atom(static_cast<size_t>(Run), 'a');
    std::string Ws(static_cast<size_t>(Run), ' ');
    for (const std::string &In :
         {"(" + Atom + " " + Atom + ")", "(" + Ws + Atom + Ws + ")",
          Atom + Ws, "(" + Atom /* reject: unclosed */}) {
      for (size_t Cut = 0; Cut <= In.size(); ++Cut)
        R.checkSplits(In, {Cut});
    }
  }
}

TEST(StreamDiffTest, SplitsOnLexemeFirstBytes) {
  // The dispatch byte is a suspension point: a chunk ending exactly
  // before a lexeme's first byte parks the scan on the dispatch load
  // itself, and one ending right after it suspends one transition in.
  // Cut every workload at every lexeme's first byte (and the byte
  // after), for every grammar.
  for (auto &Def : allBenchmarkGrammars()) {
    StreamRig R(Def);
    CompiledLexer Lex(*Def->Re, R.P.Canon);
    Workload W = genWorkload(Def->Name, 31, 500);
    Result<std::vector<Lexeme>> Toks = Lex.lexAll(W.Input);
    ASSERT_TRUE(Toks.ok()) << Def->Name << ": " << Toks.error();
    std::vector<size_t> FirstBytes;
    for (const Lexeme &L : *Toks) {
      R.checkSplits(W.Input, {L.Begin});
      if (L.Begin + 1 <= W.Input.size())
        R.checkSplits(W.Input, {L.Begin + 1});
      FirstBytes.push_back(L.Begin);
    }
    // All first bytes at once: every lexeme enters through a fresh
    // dispatch at a chunk boundary.
    R.checkSplits(W.Input, FirstBytes);
  }
}

TEST(StreamDiffTest, CommentRunsSuspendWithoutCommitting) {
  // A pure self-skip run that is *not* restartable from its interior
  // (ppm's #-comments: 'x' cannot begin a new skip lexeme): a window
  // ending mid-comment must suspend mid-run, not commit a partial
  // whitespace lexeme. Every split of comment-heavy inputs, valid and
  // corrupted.
  StreamRig R(makePpmGrammar());
  const std::string Long(40, 'c'); // straddles the 8/16-byte kernels
  for (const std::string &In :
       {std::string("P3\n#") + Long + "\n1 1\n255\n0 0 0\n",
        std::string("P3\n# a # b\n1 1\n3\n1 2 3\n"),
        std::string("P3\n1 1\n255\n0 0 #tail comment\n0\n"),
        std::string("P3\n#") + Long /* reject: truncated header */})
    R.sweepAllSplits(In);
}

TEST(StreamDiffTest, RandomMultiWaySplits) {
  Rng Rand(2026);
  for (auto &Def : allBenchmarkGrammars()) {
    StreamRig R(Def);
    for (uint64_t Seed = 1; Seed <= 2; ++Seed) {
      Workload W = genWorkload(Def->Name, Seed, 3000 + Seed * 2000);
      for (int Round = 0; Round < 8; ++Round) {
        std::vector<size_t> Cuts;
        size_t At = 0;
        while (At < W.Input.size()) {
          // Mix of tiny (1-8B) and medium (up to 512B) chunks.
          At += 1 + Rand.below(Rand.chance(1, 3) ? 8 : 512);
          if (At < W.Input.size())
            Cuts.push_back(At);
        }
        EXPECT_TRUE(R.checkSplits(W.Input, Cuts))
            << Def->Name << " seed " << Seed;
      }
    }
  }
}

TEST(StreamDiffTest, ErrorsIdenticalAtEverySplit) {
  // Corrupted inputs must fail with byte-identical diagnostics (absolute
  // offsets, expected-token sets) no matter where the chunks end — the
  // error may even be raised by an earlier feed() call.
  Rng Rand(7);
  for (auto &Def : allBenchmarkGrammars()) {
    StreamRig R(Def);
    Workload W = genWorkload(Def->Name, 13, 300);
    for (int Round = 0; Round < 12; ++Round) {
      std::string In = W.Input;
      size_t At = Rand.below(In.size());
      switch (Rand.below(3)) {
      case 0:
        In[At] = static_cast<char>(1 + Rand.below(127));
        break;
      case 1:
        In.erase(At, 1 + Rand.below(3));
        break;
      default:
        In.insert(At, 1 + Rand.below(2), "(){}[]\"!,;"[Rand.below(10)]);
        break;
      }
      for (size_t Cut = 0; Cut <= In.size(); Cut += 3)
        R.checkSplits(In, {Cut});
    }
  }
}

TEST(StreamDiffTest, CarryStaysBoundedOnDocumentStreams) {
  // Streams of independent documents (the server scenario) must not
  // accumulate carry: the watermark releases every document's bytes as
  // its value reduces to a scalar. The bound is the longest single
  // document plus the suspended lexeme, far below the stream length.
  for (const char *Name : {"json", "csv", "pgn"}) {
    std::shared_ptr<GrammarDef> Def;
    for (auto &G : allBenchmarkGrammars())
      if (G->Name == Name)
        Def = G;
    StreamRig R(Def);
    Workload W = genWorkload(Name, 3, 64 * 1024);
    size_t CarryHW = 0;
    std::vector<size_t> Cuts;
    for (size_t At = 1024; At < W.Input.size(); At += 1024)
      Cuts.push_back(At);
    Result<Value> V = R.streamParse(W.Input, Cuts, &CarryHW);
    ASSERT_TRUE(V.ok()) << Name << ": " << V.error();
    EXPECT_LT(CarryHW, W.Input.size() / 4)
        << Name << " carry high-water grew with the stream";
  }
}

TEST(StreamDiffTest, ResetReusesTheParser) {
  StreamRig R(makeJsonGrammar());
  StreamParser SP(R.P.M);
  for (int Doc = 0; Doc < 3; ++Doc) {
    Workload W = genWorkload("json", 20 + static_cast<uint64_t>(Doc), 500);
    for (size_t At = 0; At < W.Input.size(); At += 13)
      SP.feed(std::string_view(W.Input).substr(At, 13));
    ASSERT_EQ(SP.finish(), StreamStatus::Done) << SP.take().error();
    Result<Value> Str = SP.take();
    Result<Value> Whole = R.P.M.parse(W.Input);
    ASSERT_TRUE(Str.ok() && Whole.ok());
    EXPECT_EQ(*Whole, *Str);
    SP.reset();
  }
}

TEST(StreamDiffTest, TakeAfterMidStreamErrorAndResetRecovers) {
  // The post-error contract (Stream.h reset() doc): a mid-stream error
  // releases the carry and live values immediately; take() returns the
  // diagnostic, repeatably; offset() reports the error position; further
  // feeds keep failing; and reset() fully recovers the parser for the
  // next stream. Before this contract, take()-after-error left the
  // carry/retain state live until reset().
  StreamRig R(makeJsonGrammar());
  Workload Good = genWorkload("json", 23, 600);
  std::string Bad = Good.Input;
  // Corrupt a structural byte (a '!' inside a string literal would
  // still parse).
  size_t At = Bad.find_first_of("{}[],", Bad.size() / 2);
  ASSERT_NE(At, std::string::npos);
  Bad[At] = '!';
  Result<Value> Whole = R.P.M.parse(Bad);
  ASSERT_FALSE(Whole.ok());

  StreamParser SP(R.P.M);
  for (size_t At = 0; At < Bad.size(); At += 17)
    if (SP.feed(std::string_view(Bad).substr(At, 17)) == StreamStatus::Error)
      break;
  ASSERT_EQ(SP.status(), StreamStatus::Error) << "corruption not detected";

  // Carry and values released at the error, not at reset().
  EXPECT_EQ(SP.carryBytes(), 0u);
  // take() is repeatable and byte-identical to the whole-buffer error.
  Result<Value> E1 = SP.take();
  Result<Value> E2 = SP.take();
  ASSERT_FALSE(E1.ok());
  ASSERT_FALSE(E2.ok());
  EXPECT_EQ(E1.error(), Whole.error());
  EXPECT_EQ(E2.error(), Whole.error());
  // The error position survives take(); further feeds keep failing.
  EXPECT_EQ(SP.feed("{}"), StreamStatus::Error);
  EXPECT_EQ(SP.finish(), StreamStatus::Error);

  // reset() recovers: the same parser serves the next stream, and the
  // warmed pool arena is kept.
  size_t Pages = SP.pool()->pageCount();
  SP.reset();
  EXPECT_EQ(SP.pool()->pageCount(), Pages) << "reset dropped the arena";
  for (size_t At = 0; At < Good.Input.size(); At += 13)
    SP.feed(std::string_view(Good.Input).substr(At, 13));
  ASSERT_EQ(SP.finish(), StreamStatus::Done) << SP.take().error();
  Result<Value> Str = SP.take();
  Result<Value> WholeGood = R.P.M.parse(Good.Input);
  ASSERT_TRUE(Str.ok() && WholeGood.ok());
  EXPECT_EQ(*WholeGood, *Str);
}

TEST(StreamDiffTest, ErrorOffsetReportedAfterRelease) {
  // offset() after an error must report the error position even though
  // the carry was released (the window bookkeeping moved past it).
  StreamRig R(makeSexpGrammar());
  const std::string In = "(abc !def)"; // '!' fails at offset 5
  Result<Value> Whole = R.P.M.parse(In);
  ASSERT_FALSE(Whole.ok());
  for (size_t Cut = 0; Cut <= In.size(); ++Cut) {
    StreamParser SP(R.P.M);
    SP.feed(std::string_view(In).substr(0, Cut));
    SP.feed(std::string_view(In).substr(Cut));
    SP.finish();
    ASSERT_EQ(SP.status(), StreamStatus::Error) << "cut " << Cut;
    EXPECT_EQ(SP.take().error(), Whole.error()) << "cut " << Cut;
    EXPECT_EQ(SP.offset(), 5u) << "cut " << Cut;
    // Bytes fed after the error are rejected, so streamedBytes() counts
    // what the parser accepted: everything up to (at least) the error.
    EXPECT_GE(SP.streamedBytes(), 6u) << "cut " << Cut;
    EXPECT_LE(SP.streamedBytes(), In.size()) << "cut " << Cut;
    EXPECT_EQ(SP.carryBytes(), 0u) << "cut " << Cut;
  }
}

TEST(StreamDiffTest, ResetServesManyConnectionsAcrossModes) {
  // One StreamParser, many streams — value mode and event mode, valid
  // and erroring, back to back; reset() must leave no residue (stale
  // events, stale errors, stale carry) between them.
  StreamRig R(makeJsonGrammar());
  StreamOptions O;
  O.Events = true;
  StreamParser SP(R.P.M, O);
  for (int Conn = 0; Conn < 4; ++Conn) {
    Workload W = genWorkload("json", 40 + static_cast<uint64_t>(Conn), 400);
    std::string In = W.Input;
    const bool Corrupt = Conn % 2 == 1;
    if (Corrupt) {
      size_t At = In.find_first_of("{}[],", In.size() / 3);
      ASSERT_NE(At, std::string::npos);
      In[At] = '!';
    }
    for (size_t At = 0; At < In.size(); At += 11)
      if (SP.feed(std::string_view(In).substr(At, 11)) ==
          StreamStatus::Error)
        break;
    SP.finish();
    std::vector<ParseEvent> Evs = SP.takeEvents();
    std::vector<ParseEvent> WholeEvs;
    Status WS = R.P.M.parseEvents(R.P.M.Start, In, WholeEvs);
    ASSERT_EQ(WS.ok(), SP.status() == StreamStatus::Done) << Conn;
    ASSERT_EQ(WholeEvs.size(), Evs.size()) << Conn;
    for (size_t I = 0; I < Evs.size(); ++I)
      ASSERT_EQ(WholeEvs[I], Evs[I]) << "conn " << Conn << " event " << I;
    if (Corrupt)
      EXPECT_EQ(SP.take().error(), WS.error()) << Conn;
    SP.reset();
    EXPECT_TRUE(SP.events().empty()) << "reset left undrained events";
  }
}

TEST(StreamDiffTest, FeedAfterFinishFails) {
  StreamRig R(makeSexpGrammar());
  StreamParser SP(R.P.M);
  EXPECT_EQ(SP.feed("(a b)"), StreamStatus::NeedData);
  EXPECT_EQ(SP.finish(), StreamStatus::Done);
  EXPECT_EQ(SP.feed("(c)"), StreamStatus::Error);
}

TEST(StreamDiffTest, StreamLexerMatchesLexAll) {
  for (auto &Def : allBenchmarkGrammars()) {
    auto PR = compileFlap(Def);
    ASSERT_TRUE(PR.ok()) << PR.error();
    FlapParser P = PR.take();
    CompiledLexer Lex(*Def->Re, P.Canon);
    Workload W = genWorkload(Def->Name, 17, 600);
    Result<std::vector<Lexeme>> Whole = Lex.lexAll(W.Input);

    for (size_t Step : {size_t(1), size_t(3), size_t(7), size_t(64)}) {
      StreamLexer SL(Lex);
      std::vector<Lexeme> Toks;
      Status St = Status::success();
      for (size_t At = 0; At < W.Input.size() && St.ok(); At += Step)
        St = SL.feed(std::string_view(W.Input).substr(At, Step), Toks);
      if (St.ok())
        St = SL.finish(Toks);
      ASSERT_EQ(Whole.ok(), St.ok()) << Def->Name << " step " << Step;
      if (!Whole.ok())
        continue;
      ASSERT_EQ(Whole->size(), Toks.size()) << Def->Name << " step " << Step;
      for (size_t K = 0; K < Toks.size(); ++K) {
        EXPECT_EQ((*Whole)[K].Tok, Toks[K].Tok);
        EXPECT_EQ((*Whole)[K].Begin, Toks[K].Begin);
        EXPECT_EQ((*Whole)[K].End, Toks[K].End);
      }
    }
  }
}

TEST(StreamDiffTest, StreamLexerErrorOffsets) {
  auto Def = makeSexpGrammar();
  auto PR = compileFlap(Def);
  ASSERT_TRUE(PR.ok());
  FlapParser P = PR.take();
  CompiledLexer Lex(*Def->Re, P.Canon);
  const std::string In = "(abc !def)"; // '!' matches no rule, offset 5
  Result<std::vector<Lexeme>> Whole = Lex.lexAll(In);
  ASSERT_FALSE(Whole.ok());
  for (size_t Cut = 0; Cut <= In.size(); ++Cut) {
    StreamLexer SL(Lex);
    std::vector<Lexeme> Toks;
    Status St = SL.feed(std::string_view(In).substr(0, Cut), Toks);
    if (St.ok())
      St = SL.feed(std::string_view(In).substr(Cut), Toks);
    if (St.ok())
      St = SL.finish(Toks);
    ASSERT_FALSE(St.ok()) << "cut " << Cut;
    EXPECT_EQ(St.error(), Whole.error()) << "cut " << Cut;
  }
}

TEST(StreamDiffTest, RecoveryModeMatchesWholeBufferAtRandomSplits) {
  // Recovery-mode streaming (StreamOptions::Recover) gets the same
  // differential discipline as plain streaming: the recovered segment
  // values, the structured diagnostic list, and the truncation flag
  // must match CompiledParser::parseRecover over the concatenated
  // buffer for random multi-way cuts — cuts that land inside lexemes,
  // inside the resync skipRun scan, and on the sync byte itself.
  // (tests/RecoveryDiffTest.cpp sweeps every two-way split of small
  // inputs; this covers large workloads times random chunking.)
  Rng Rand(515);
  for (auto &Def : allBenchmarkGrammars()) {
    StreamRig R(Def);
    ParseScratch Scratch;
    for (uint64_t Seed = 1; Seed <= 2; ++Seed) {
      Workload W = genWorkload(Def->Name, Seed + 60, 1500);
      std::string In = W.Input;
      // A handful of corruptions spread across the buffer (some may
      // land inside string literals and stay legal — the differential
      // holds either way).
      for (int K = 0; K < 4; ++K)
        In[Rand.below(In.size())] = "!\"%{)];"[Rand.below(7)];
      RecoveredParse Whole = R.P.parseRecover(In, Scratch);
      for (int Round = 0; Round < 6; ++Round) {
        StreamOptions O;
        O.Recover = true;
        StreamParser SP(R.P.M, O);
        size_t At = 0;
        while (At < In.size()) {
          size_t N = 1 + Rand.below(Rand.chance(1, 3) ? 8 : 256);
          SP.feed(std::string_view(In).substr(At, N));
          At += N;
        }
        SP.finish();
        std::vector<Value> Vals = SP.takeValues();
        std::vector<ParseDiagnostic> Errs = SP.takeErrors();
        ASSERT_EQ(Whole.Errors.size(), Errs.size())
            << Def->Name << " seed " << Seed << " round " << Round;
        for (size_t I = 0; I < Errs.size(); ++I)
          ASSERT_EQ(Whole.Errors[I], Errs[I])
              << Def->Name << " diagnostic " << I;
        ASSERT_EQ(Whole.Values.size(), Vals.size()) << Def->Name;
        for (size_t I = 0; I < Vals.size(); ++I)
          ASSERT_EQ(Whole.Values[I], Vals[I]) << Def->Name << " value " << I;
        EXPECT_EQ(Whole.Truncated, SP.truncated()) << Def->Name;
      }
    }
  }
}

TEST(StreamDiffTest, MultiEntryStreaming) {
  // Streaming from a non-default entry point: same machine, same tables
  // (paper §8), entry selected via StreamOptions::Start.
  auto Def = makeJsonGrammar();
  StreamRig R(Def);
  // The machine's own start; exercising the options path.
  StreamOptions O;
  O.Start = R.P.M.Start;
  StreamParser SP(R.P.M, O);
  const std::string In = "{\"k\": [1, 2, {}]}";
  for (char C : In)
    SP.feed(std::string_view(&C, 1));
  ASSERT_EQ(SP.finish(), StreamStatus::Done);
  Result<Value> Whole = R.P.M.parse(In);
  ASSERT_TRUE(Whole.ok());
  EXPECT_EQ(*Whole, *SP.take());
}

} // namespace
