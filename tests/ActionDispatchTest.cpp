//===- tests/ActionDispatchTest.cpp - Tagged vs reference dispatch -------------===//
//
// Part of flap-cpp, a C++ reproduction of "flap: A Deterministic Parser
// with Fused Lexing" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// Differential suite for the devirtualized semantic-action path. The
/// tagged micro-op dispatch (plus dead-token elision, pre-fused ε-chains
/// and the arena value pool) must be observationally identical to the
/// retained legacy std::function reference path:
///
///   - whole buffer: CompiledParser::parse (tagged, elided, pooled) vs
///     CompiledParser::parseLegacy (boxed callables, unrewritten symbol
///     stream, heap values) — byte-identical Value trees and error
///     strings;
///   - streaming: StreamParser in default mode vs RefActions mode vs the
///     whole-buffer result, across split points (the StreamDiffTest
///     driver shape), whole-buffer and chunked.
///
//===----------------------------------------------------------------------===//

#include "engine/Pipeline.h"
#include "engine/Stream.h"
#include "grammars/Grammars.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace flap;

namespace {

struct DispatchRig {
  std::shared_ptr<GrammarDef> Def;
  FlapParser P;

  explicit DispatchRig(std::shared_ptr<GrammarDef> D) : Def(std::move(D)) {
    auto R = compileFlap(Def);
    if (!R.ok()) {
      ADD_FAILURE() << "compile failed: " << R.error();
      return;
    }
    P = R.take();
  }

  void *fresh(std::shared_ptr<void> &C) {
    if (Def->NewCtx)
      C = Def->NewCtx();
    return C.get();
  }

  /// Streams \p In cut at \p Cuts, through the tagged or the reference
  /// action path.
  Result<Value> streamParse(std::string_view In,
                            const std::vector<size_t> &Cuts,
                            bool RefActions) {
    std::shared_ptr<void> C;
    StreamOptions O;
    O.User = fresh(C);
    O.RefActions = RefActions;
    StreamParser SP(P.M, O);
    size_t Prev = 0;
    for (size_t Cut : Cuts) {
      SP.feed(In.substr(Prev, Cut - Prev));
      Prev = Cut;
    }
    SP.feed(In.substr(Prev));
    SP.finish();
    return SP.take();
  }

  /// Tagged vs reference, whole-buffer and streamed at \p Cuts: same
  /// verdict, byte-identical values (structural ==), identical error
  /// strings.
  void checkAll(std::string_view In, const std::vector<size_t> &Cuts) {
    std::shared_ptr<void> C1, C2;
    ParseScratch Scratch;
    Result<Value> Tagged = P.M.parse(In, Scratch, fresh(C1));
    Result<Value> Ref = P.M.parseLegacy(In, fresh(C2));
    ASSERT_EQ(Tagged.ok(), Ref.ok())
        << Def->Name << ": tagged vs reference verdict on '" << In << "'";
    if (Tagged.ok())
      EXPECT_EQ(*Tagged, *Ref) << Def->Name << " value drift on '" << In
                               << "'";
    else
      EXPECT_EQ(Tagged.error(), Ref.error()) << Def->Name;

    Result<Value> StrTag = streamParse(In, Cuts, /*RefActions=*/false);
    Result<Value> StrRef = streamParse(In, Cuts, /*RefActions=*/true);
    ASSERT_EQ(StrTag.ok(), Tagged.ok()) << Def->Name << " (streamed)";
    ASSERT_EQ(StrRef.ok(), Tagged.ok()) << Def->Name << " (streamed ref)";
    if (Tagged.ok()) {
      EXPECT_EQ(*StrTag, *Tagged) << Def->Name << " streamed tagged";
      EXPECT_EQ(*StrRef, *Tagged) << Def->Name << " streamed reference";
    } else {
      EXPECT_EQ(StrTag.error(), Tagged.error()) << Def->Name;
      EXPECT_EQ(StrRef.error(), Tagged.error()) << Def->Name;
    }
  }
};

TEST(ActionDispatchTest, WholeBufferAndChunkedOnAllGrammars) {
  Rng Rand(2027);
  for (auto &Def : allBenchmarkGrammars()) {
    DispatchRig R(Def);
    for (uint64_t Seed : {5u, 19u}) {
      Workload W = genWorkload(Def->Name, Seed, 2500 + Seed * 500);
      // Whole buffer, plus random multi-way chunkings.
      R.checkAll(W.Input, {});
      for (int Round = 0; Round < 4; ++Round) {
        std::vector<size_t> Cuts;
        size_t At = 0;
        while (At < W.Input.size()) {
          At += 1 + Rand.below(Rand.chance(1, 3) ? 7 : 301);
          if (At < W.Input.size())
            Cuts.push_back(At);
        }
        R.checkAll(W.Input, Cuts);
      }
    }
  }
}

TEST(ActionDispatchTest, EveryTwoWaySplitOnSmallInputs) {
  // The exhaustive split sweep of the StreamDiffTest driver, applied to
  // the tagged-vs-reference comparison.
  for (auto &Def : allBenchmarkGrammars()) {
    DispatchRig R(Def);
    Workload W = genWorkload(Def->Name, 23, 220);
    for (size_t Cut = 0; Cut <= W.Input.size(); ++Cut)
      R.checkAll(W.Input, {Cut});
  }
}

TEST(ActionDispatchTest, ErrorStringsIdenticalOnCorruptedInputs) {
  Rng Rand(11);
  for (auto &Def : allBenchmarkGrammars()) {
    DispatchRig R(Def);
    Workload W = genWorkload(Def->Name, 29, 280);
    for (int Round = 0; Round < 10; ++Round) {
      std::string In = W.Input;
      size_t At = Rand.below(In.size());
      switch (Rand.below(3)) {
      case 0:
        In[At] = static_cast<char>(1 + Rand.below(127));
        break;
      case 1:
        In.erase(At, 1 + Rand.below(3));
        break;
      default:
        In.insert(At, 1 + Rand.below(2), "(){}[]\"!,;"[Rand.below(10)]);
        break;
      }
      for (size_t Cut = 0; Cut <= In.size(); Cut += 5)
        R.checkAll(In, {Cut});
    }
  }
}

TEST(ActionDispatchTest, TokenIntAndMaxAccumAgreeWithReferences) {
  // The TokenInt and MaxAccum micro-op kinds (the devirtualized ppm
  // per-sample path) against the std::function reference path and the
  // legacy loop, whole-buffer and at every 2-way split: the packed
  // count+max fold must come out bit-identical everywhere.
  auto Def = std::make_shared<GrammarDef>("stats");
  Lang &L = *Def->L;
  TokenId Num = Def->Lexer->rule("[0-9]+", "num");
  Def->Lexer->skip("[ \\n]");
  Def->Root = L.foldMaxAccum(L.mapTokenInt(L.tok(Num)));
  DispatchRig R(Def);
  for (const std::string In :
       {"", "7", "0", "1 2 3", "9 8 7 6 5", "40 2 40", "007 3",
        "4294967 1 4294967"}) {
    R.checkAll(In, {});
    for (size_t Cut = 0; Cut <= In.size(); ++Cut)
      R.checkAll(In, {Cut});
  }
  // Unpack semantics: count in the low 32 bits, max in the high 32.
  Result<Value> V = R.P.M.parse("3 1 4 1 5");
  ASSERT_TRUE(V.ok()) << V.error();
  EXPECT_EQ(maxAccumCount(V->asInt()), 5);
  EXPECT_EQ(maxAccumMax(V->asInt()), 5);
  // Samples past the 32-bit pack saturate to 2^32-1 — still above any
  // 32-bit bound, so out-of-range detection survives — and must never
  // corrupt the count half (the shift would otherwise be signed-
  // overflow UB).
  Result<Value> Big = R.P.M.parse("42 4294967296 99999999999 7");
  ASSERT_TRUE(Big.ok()) << Big.error();
  EXPECT_EQ(maxAccumCount(Big->asInt()), 4);
  EXPECT_EQ(maxAccumMax(Big->asInt()), 4294967295LL);
  // ppm: an oversized sample must still fail the color-range check.
  {
    auto PpmDef = makePpmGrammar();
    auto PpmP = compileFlap(PpmDef);
    ASSERT_TRUE(PpmP.ok());
    Result<Value> Bad = PpmP->M.parse("P3\n1 1\n255\n0 4294967296 2\n");
    ASSERT_TRUE(Bad.ok());
    EXPECT_FALSE(Bad->asBool());
  }
  Result<Value> E = R.P.M.parse("");
  ASSERT_TRUE(E.ok());
  EXPECT_EQ(E->asInt(), 0);
  // The ppm grammar rides these kinds: its hot actions must all be
  // micro-ops now (only the cold root check stays custom).
  auto Ppm = makePpmGrammar();
  auto PP = compileFlap(Ppm);
  ASSERT_TRUE(PP.ok());
  int Slow = 0;
  for (size_t A = 0; A < Ppm->L->Actions.size(); ++A)
    Slow += Ppm->L->Actions.micro()[A].K == MicroOp::MSlow;
  EXPECT_EQ(Slow, 1) << "ppm should keep exactly the root check custom";
}

TEST(ActionDispatchTest, PooledValuesEscapeTheirScratch) {
  // Arena-backed values must stay valid after the scratch (and its
  // pool handle) is gone: the nodes pin the pool pages. arith builds
  // genuine pair structure mid-parse; json/sexp return scalars — both
  // paths covered.
  for (const char *Name : {"arith", "json"}) {
    std::shared_ptr<GrammarDef> Def;
    for (auto &G : allBenchmarkGrammars())
      if (G->Name == Name)
        Def = G;
    DispatchRig R(Def);
    Workload W = genWorkload(Name, 31, 1500);
    Result<Value> Ref = R.P.M.parseLegacy(W.Input);
    ASSERT_TRUE(Ref.ok()) << Ref.error();
    Value Escaped;
    {
      auto Scratch = std::make_unique<ParseScratch>();
      Result<Value> V = R.P.M.parse(W.Input, *Scratch);
      ASSERT_TRUE(V.ok()) << V.error();
      Escaped = V.take();
      // Reuse the scratch (recycles dead nodes), then destroy it.
      Result<Value> V2 = R.P.M.parse(W.Input, *Scratch);
      ASSERT_TRUE(V2.ok());
    }
    EXPECT_EQ(Escaped, *Ref) << Name;
  }
}

TEST(ActionDispatchTest, ReadsInputFlagsMatchTheGrammars) {
  // json/sexp/csv never read lexeme text → the streaming parser may
  // drop retain tracking wholesale; pgn/ppm/arith do read.
  for (auto &Def : allBenchmarkGrammars()) {
    auto P = compileFlap(Def);
    ASSERT_TRUE(P.ok());
    bool Reads = Def->L->Actions.readsInput();
    bool Expect = Def->Name == "pgn" || Def->Name == "ppm" ||
                  Def->Name == "arith";
    EXPECT_EQ(Reads, Expect) << Def->Name;
  }
}

TEST(ActionDispatchTest, CarryStaysLexemeSizedWithTrackingOff) {
  // With no input-reading actions, the streaming carry is just the
  // suspended lexeme — not the document (ROADMAP follow-up (a)).
  DispatchRig R(makeJsonGrammar());
  ASSERT_FALSE(R.Def->L->Actions.readsInput());
  Workload W = genWorkload("json", 37, 64 * 1024);
  StreamParser SP(R.P.M);
  std::string_view In = W.Input;
  for (size_t At = 0; At < In.size(); At += 997)
    SP.feed(In.substr(At, 997));
  ASSERT_EQ(SP.finish(), StreamStatus::Done) << SP.take().error();
  EXPECT_LT(SP.carryHighWater(), 2048u)
      << "carry should be lexeme-sized, not document-sized";
}

} // namespace
