//===- tests/SinkDiffTest.cpp - Sink-policy differential tests ----------------===//
//
// Part of flap-cpp, a C++ reproduction of "flap: A Deterministic Parser
// with Fused Lexing" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// The Sink policy seam (engine/Sink.h) must be observationally
/// invisible: the EventSink stream, replayed into a value builder, must
/// equal the ValueSink output — values and error strings — on every
/// grammar, whole-buffer and at every chunk split of the streaming
/// driver; the streamed event stream must be byte-identical (spans and
/// materialized text included) to the whole-buffer one; and event-mode
/// streaming must retain no input beyond the in-progress lexeme, even on
/// the document-spanning bracket corpora (sexp, ppm) whose value-mode
/// retention is legitimately document-sized. parseBatch must agree with
/// one-shot parseFrom input for input.
///
//===----------------------------------------------------------------------===//

#include "engine/Pipeline.h"
#include "engine/Sink.h"
#include "engine/Stream.h"
#include "grammars/Grammars.h"
#include "lexer/CompiledLexer.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace flap;

namespace {

/// Replays an EventSink stream into a value builder: token events push
/// token values, Reduce events run the named pool occurrence, Eps events
/// run the nonterminal's pre-fused ε-program — the SAX consumer contract
/// from engine/README.md. \p Input backs input-reading actions (the
/// events themselves carry the text; the replay checks it against the
/// spans).
Value replayEvents(const CompiledParser &M,
                   const std::vector<ParseEvent> &Evs,
                   std::string_view Input, void *User) {
  ParseScratch Scr;
  ParseContext Ctx{Input, User, 0, Scr.Pool};
  ValueStack &Vals = Scr.Values;
  for (const ParseEvent &E : Evs) {
    switch (E.Kind) {
    case EventKind::Enter:
      break; // structural only
    case EventKind::Token:
      // Lexeme-text lifetime contract: the materialized text is the span.
      EXPECT_EQ(E.Text, Input.substr(static_cast<size_t>(E.Begin),
                                     static_cast<size_t>(E.End - E.Begin)));
      Vals.push(Value::token(E.Tok, static_cast<uint32_t>(E.Begin),
                             static_cast<uint32_t>(E.End)));
      break;
    case EventKind::Reduce:
      Vals.applyPooled(M.OpPool[E.Op], *M.Actions, Ctx);
      break;
    case EventKind::Eps:
      runEpsProgram(M, M.Nts[E.Nt].EpsChain, Vals, Ctx);
      break;
    }
  }
  return Vals.collect();
}

struct SinkRig {
  std::shared_ptr<GrammarDef> Def;
  FlapParser P;

  explicit SinkRig(std::shared_ptr<GrammarDef> D) : Def(std::move(D)) {
    auto R = compileFlap(Def);
    if (!R.ok()) {
      ADD_FAILURE() << "compile failed: " << R.error();
      return;
    }
    P = R.take();
  }

  void *fresh(std::shared_ptr<void> &C) {
    if (Def->NewCtx)
      C = Def->NewCtx();
    return C.get();
  }

  /// Whole-buffer: ValueSink vs EventSink+replay — same verdict, same
  /// value, same error string.
  void checkWholeBuffer(std::string_view In) {
    std::shared_ptr<void> C1, C2;
    Result<Value> Val = P.M.parse(In, fresh(C1));
    std::vector<ParseEvent> Evs;
    Status Ev = P.M.parseEvents(P.M.Start, In, Evs);
    ASSERT_EQ(Val.ok(), Ev.ok()) << Def->Name << " on '" << In << "'";
    if (!Val.ok()) {
      EXPECT_EQ(Val.error(), Ev.error()) << Def->Name;
      return;
    }
    Value Re = replayEvents(P.M, Evs, In, fresh(C2));
    EXPECT_EQ(*Val, Re) << Def->Name << " replay drift on '" << In << "'";
  }

  /// Streams \p In in event mode, cut at \p Cuts, draining events after
  /// every feed (the bounded-consumer pattern).
  StreamStatus streamEvents(std::string_view In,
                            const std::vector<size_t> &Cuts,
                            std::vector<ParseEvent> &Evs, std::string &Err,
                            size_t *CarryHW = nullptr) {
    StreamOptions O;
    O.Events = true;
    StreamParser SP(P.M, O);
    size_t Prev = 0;
    for (size_t Cut : Cuts) {
      SP.feed(In.substr(Prev, Cut - Prev));
      for (ParseEvent &E : SP.takeEvents())
        Evs.push_back(std::move(E));
      Prev = Cut;
    }
    SP.feed(In.substr(Prev));
    SP.finish();
    for (ParseEvent &E : SP.takeEvents())
      Evs.push_back(std::move(E));
    if (CarryHW)
      *CarryHW = SP.carryHighWater();
    if (SP.status() == StreamStatus::Error)
      Err = SP.take().error();
    return SP.status();
  }

  /// Streamed-at-Cuts event stream == whole-buffer event stream,
  /// event for event (kind, ids, spans, materialized text), same error
  /// strings; replay agrees with ValueSink.
  void checkEventSplits(std::string_view In,
                        const std::vector<size_t> &Cuts) {
    std::vector<ParseEvent> Whole;
    Status WS = P.M.parseEvents(P.M.Start, In, Whole);
    std::vector<ParseEvent> Str;
    std::string StrErr;
    StreamStatus SS = streamEvents(In, Cuts, Str, StrErr);
    ASSERT_EQ(WS.ok(), SS == StreamStatus::Done)
        << Def->Name << " (" << Cuts.size() << " cuts) on '" << In << "'";
    ASSERT_EQ(Whole.size(), Str.size())
        << Def->Name << " event count drift (" << Cuts.size() << " cuts)";
    for (size_t I = 0; I < Whole.size(); ++I)
      ASSERT_EQ(Whole[I], Str[I])
          << Def->Name << " event " << I << " drift";
    if (!WS.ok()) {
      EXPECT_EQ(WS.error(), StrErr) << Def->Name;
      return;
    }
    std::shared_ptr<void> C1, C2;
    Result<Value> Val = P.M.parse(In, fresh(C1));
    ASSERT_TRUE(Val.ok()) << Def->Name << ": " << Val.error();
    EXPECT_EQ(*Val, replayEvents(P.M, Str, In, fresh(C2))) << Def->Name;
  }
};

TEST(SinkDiffTest, EventReplayMatchesValueSinkAllGrammars) {
  for (auto &Def : allBenchmarkGrammars()) {
    SinkRig R(Def);
    Workload W = genWorkload(Def->Name, 5, 2000);
    R.checkWholeBuffer(W.Input);
    // Truncations land inside every construct; errors must match too.
    for (size_t Cut = 0; Cut < W.Input.size(); Cut += 7)
      R.checkWholeBuffer(std::string_view(W.Input).substr(0, Cut));
  }
}

TEST(SinkDiffTest, EventReplayMatchesValueSinkOnCorruptedInputs) {
  Rng Rand(31);
  for (auto &Def : allBenchmarkGrammars()) {
    SinkRig R(Def);
    Workload W = genWorkload(Def->Name, 9, 400);
    for (int Round = 0; Round < 16; ++Round) {
      std::string In = W.Input;
      size_t At = Rand.below(In.size());
      switch (Rand.below(3)) {
      case 0:
        In[At] = static_cast<char>(1 + Rand.below(127));
        break;
      case 1:
        In.erase(At, 1 + Rand.below(3));
        break;
      default:
        In.insert(At, 1, "(){}[]\"!,;"[Rand.below(10)]);
        break;
      }
      R.checkWholeBuffer(In);
    }
  }
}

TEST(SinkDiffTest, StreamedEventsIdenticalAtEveryTwoWaySplit) {
  for (auto &Def : allBenchmarkGrammars()) {
    SinkRig R(Def);
    Workload W = genWorkload(Def->Name, 11, 300);
    for (size_t Cut = 0; Cut <= W.Input.size(); ++Cut)
      R.checkEventSplits(W.Input, {Cut});
    // Every-byte chunks: each lexeme enters through a suspension.
    std::vector<size_t> Every;
    for (size_t Cut = 1; Cut < W.Input.size(); ++Cut)
      Every.push_back(Cut);
    R.checkEventSplits(W.Input, Every);
  }
}

TEST(SinkDiffTest, StreamedEventsRandomMultiWaySplits) {
  Rng Rand(2027);
  for (auto &Def : allBenchmarkGrammars()) {
    SinkRig R(Def);
    Workload W = genWorkload(Def->Name, 13, 5000);
    for (int Round = 0; Round < 6; ++Round) {
      std::vector<size_t> Cuts;
      size_t At = 0;
      while (At < W.Input.size()) {
        At += 1 + Rand.below(Rand.chance(1, 3) ? 8 : 512);
        if (At < W.Input.size())
          Cuts.push_back(At);
      }
      R.checkEventSplits(W.Input, Cuts);
    }
  }
}

TEST(SinkDiffTest, StreamedEventErrorsIdenticalAtSplits) {
  Rng Rand(17);
  for (auto &Def : allBenchmarkGrammars()) {
    SinkRig R(Def);
    Workload W = genWorkload(Def->Name, 19, 300);
    for (int Round = 0; Round < 8; ++Round) {
      std::string In = W.Input;
      In[Rand.below(In.size())] = static_cast<char>(1 + Rand.below(127));
      for (size_t Cut = 0; Cut <= In.size(); Cut += 5)
        R.checkEventSplits(In, {Cut});
    }
  }
}

/// The carry bound of the sink refactor: in event mode the parser keeps
/// no input beyond the in-progress lexeme (token or skip run), so the
/// carry high-water on a *document-spanning bracket structure* — whose
/// value-mode retention is legitimately document-sized — is the longest
/// lexeme, not the document.
TEST(SinkDiffTest, EventModeCarryIsLexemeBoundedOnBracketCorpora) {
  for (const char *Name : {"sexp", "ppm"}) {
    std::shared_ptr<GrammarDef> Def;
    for (auto &G : allBenchmarkGrammars())
      if (G->Name == Name)
        Def = G;
    SinkRig R(Def);
    Workload W = genWorkload(Name, 3, 256 * 1024);

    // The bound: the longest lexeme or inter-lexeme skip run.
    CompiledLexer Lex(*Def->Re, R.P.Canon);
    auto Toks = Lex.lexAll(W.Input);
    ASSERT_TRUE(Toks.ok()) << Name << ": " << Toks.error();
    size_t MaxLex = 0, Prev = 0;
    for (const Lexeme &L : *Toks) {
      MaxLex = std::max(MaxLex, static_cast<size_t>(L.End - L.Begin));
      MaxLex = std::max(MaxLex, static_cast<size_t>(L.Begin) - Prev);
      Prev = L.End;
    }
    MaxLex = std::max(MaxLex, W.Input.size() - Prev);

    std::vector<size_t> Cuts;
    for (size_t At = 4096; At < W.Input.size(); At += 4096)
      Cuts.push_back(At);

    std::vector<ParseEvent> Evs;
    std::string Err;
    size_t EventCarry = 0;
    ASSERT_EQ(R.streamEvents(W.Input, Cuts, Evs, Err, &EventCarry),
              StreamStatus::Done)
        << Name << ": " << Err;
    EXPECT_LE(EventCarry, MaxLex + 8)
        << Name << " event-mode carry exceeds the in-progress lexeme "
        << "(max lexeme/skip run " << MaxLex << ")";

    // Contrast on ppm (whose actions read input, so value mode retains
    // back to the header tokens the root action consumes at the end):
    // the refactor turns document-sized retention into lexeme-sized.
    if (std::string(Name) == "ppm") {
      std::shared_ptr<void> C;
      StreamOptions VO;
      VO.User = R.fresh(C);
      StreamParser VP(R.P.M, VO);
      size_t Prev2 = 0;
      for (size_t Cut : Cuts) {
        VP.feed(std::string_view(W.Input).substr(Prev2, Cut - Prev2));
        Prev2 = Cut;
      }
      VP.feed(std::string_view(W.Input).substr(Prev2));
      ASSERT_EQ(VP.finish(), StreamStatus::Done);
      EXPECT_GT(VP.carryHighWater(), W.Input.size() / 2)
          << "ppm value-mode carry unexpectedly small: the contrast this "
             "test documents has changed";
      EXPECT_LT(EventCarry * 16, VP.carryHighWater())
          << "event mode should beat value-mode retention by orders of "
             "magnitude on ppm";
    }
  }
}

TEST(SinkDiffTest, ParseBatchMatchesOneShot) {
  for (const char *Name : {"json", "csv", "sexp"}) {
    std::shared_ptr<GrammarDef> Def;
    for (auto &G : allBenchmarkGrammars())
      if (G->Name == Name)
        Def = G;
    SinkRig R(Def);

    // A server-shaped batch: many small independent documents, a few
    // corrupted ones mixed in.
    std::vector<std::string> Docs;
    for (uint64_t I = 0; I < 64; ++I) {
      Workload W = genWorkload(Name, 100 + I, 200 + 13 * I);
      if (I % 9 == 4 && !W.Input.empty())
        W.Input[W.Input.size() / 2] = '!';
      Docs.push_back(std::move(W.Input));
    }
    std::vector<std::string_view> Views(Docs.begin(), Docs.end());

    ParseScratch Scratch;
    std::vector<Result<Value>> Batch =
        R.P.M.parseBatch(R.P.M.Start, Views, Scratch);
    ASSERT_EQ(Batch.size(), Views.size());
    for (size_t I = 0; I < Views.size(); ++I) {
      Result<Value> One = R.P.M.parseFrom(R.P.M.Start, Views[I]);
      ASSERT_EQ(One.ok(), Batch[I].ok()) << Name << " doc " << I;
      if (One.ok())
        EXPECT_EQ(*One, *Batch[I]) << Name << " doc " << I;
      else
        EXPECT_EQ(One.error(), Batch[I].error()) << Name << " doc " << I;
    }
  }
}

TEST(SinkDiffTest, ParseBatchPerInputContexts) {
  // The per-input Users overload: each batch input gets its own action
  // context, so the ctx-accumulating grammars (csv/pgn/ppm) can be
  // batch-served without cross-document contamination. Each document's
  // value AND its context tallies must match a one-shot parse with a
  // fresh context.
  SinkRig R(makePgnGrammar());
  std::vector<std::string> Docs;
  for (uint64_t I = 0; I < 24; ++I)
    Docs.push_back(genWorkload("pgn", 300 + I, 200 + 17 * I).Input);
  std::vector<std::string_view> Views(Docs.begin(), Docs.end());

  std::vector<std::shared_ptr<void>> Ctxs(Views.size());
  std::vector<void *> Users(Views.size());
  for (size_t I = 0; I < Views.size(); ++I) {
    Ctxs[I] = R.Def->NewCtx();
    Users[I] = Ctxs[I].get();
  }

  ParseScratch Scratch;
  std::vector<Result<Value>> Batch =
      R.P.M.parseBatch(R.P.M.Start, Views, Users, Scratch);
  ASSERT_EQ(Batch.size(), Views.size());
  for (size_t I = 0; I < Views.size(); ++I) {
    std::shared_ptr<void> OneCtx = R.Def->NewCtx();
    Result<Value> One = R.P.M.parseFrom(R.P.M.Start, Views[I], OneCtx.get());
    ASSERT_EQ(One.ok(), Batch[I].ok()) << "doc " << I;
    if (One.ok())
      EXPECT_EQ(*One, *Batch[I]) << "doc " << I;
    const PgnCtx &B = *static_cast<PgnCtx *>(Users[I]);
    const PgnCtx &O = *static_cast<PgnCtx *>(OneCtx.get());
    EXPECT_EQ(B.White, O.White) << "doc " << I;
    EXPECT_EQ(B.Black, O.Black) << "doc " << I;
    EXPECT_EQ(B.Draw, O.Draw) << "doc " << I;
    EXPECT_EQ(B.Unknown, O.Unknown) << "doc " << I;
  }
}

TEST(SinkDiffTest, ParseBatchResultsOutliveTheBatch) {
  // Pool-backed values from earlier batch inputs must stay valid while
  // later inputs reuse the same scratch, and after the scratch dies.
  SinkRig R(makeJsonGrammar());
  std::vector<std::string> Docs;
  for (uint64_t I = 0; I < 16; ++I)
    Docs.push_back(genWorkload("json", 200 + I, 400).Input);
  std::vector<std::string_view> Views(Docs.begin(), Docs.end());

  std::vector<Result<Value>> Batch;
  {
    ParseScratch Scratch;
    Batch = R.P.M.parseBatch(R.P.M.Start, Views, Scratch);
  } // scratch (and its pool handle) gone; values pin the pages
  for (size_t I = 0; I < Views.size(); ++I) {
    Result<Value> One = R.P.M.parseFrom(R.P.M.Start, Views[I]);
    ASSERT_TRUE(One.ok() && Batch[I].ok()) << I;
    EXPECT_EQ(*One, *Batch[I]) << I;
  }
}

TEST(SinkDiffTest, RecoveryDiagnosticsIdenticalAcrossSinkPolicies) {
  // The recovery drivers run once per sink policy — parseRecover
  // (ValueSink), parseEventsRecover (EventSink), recognizeRecover
  // (NullSink) — but must report byte-identical structured diagnostics:
  // same offsets, line/column, expected sets, resync actions, same
  // truncation flag. And the first diagnostic's message() must equal
  // the legacy error string of the non-recovery parse — the
  // single-formatter seam of engine/Diagnostic.h that replaced the
  // three printf copies.
  Rng Rand(47);
  for (auto &Def : allBenchmarkGrammars()) {
    SinkRig R(Def);
    Workload W = genWorkload(Def->Name, 21, 350);
    ParseScratch Scratch;
    for (int Round = 0; Round < 12; ++Round) {
      std::string In = W.Input;
      size_t At = Rand.below(In.size());
      switch (Rand.below(3)) {
      case 0:
        In[At] = static_cast<char>(1 + Rand.below(127));
        break;
      case 1:
        In.erase(At, 1 + Rand.below(3));
        break;
      default:
        In.insert(At, 1, "(){}[]\"!,;"[Rand.below(10)]);
        break;
      }
      std::shared_ptr<void> C1, C2;
      RecoveredParse V = R.P.M.parseRecover(In, Scratch, R.fresh(C1));
      std::vector<ParseEvent> Evs;
      RecoveredParse E =
          R.P.M.parseEventsRecover(R.P.M.Start, In, Scratch, Evs);
      RecoveredParse N = R.P.M.recognizeRecover(R.P.M.Start, In, Scratch);
      ASSERT_EQ(V.Errors.size(), E.Errors.size())
          << Def->Name << " round " << Round;
      ASSERT_EQ(V.Errors.size(), N.Errors.size())
          << Def->Name << " round " << Round;
      for (size_t I = 0; I < V.Errors.size(); ++I) {
        ASSERT_EQ(V.Errors[I], E.Errors[I])
            << Def->Name << " value-vs-event diagnostic " << I;
        ASSERT_EQ(V.Errors[I], N.Errors[I])
            << Def->Name << " value-vs-recognize diagnostic " << I;
      }
      EXPECT_EQ(V.Truncated, E.Truncated) << Def->Name;
      EXPECT_EQ(V.Truncated, N.Truncated) << Def->Name;

      Result<Value> Plain = R.P.M.parse(In, R.fresh(C2));
      ASSERT_EQ(Plain.ok(), V.Errors.empty())
          << Def->Name << " round " << Round;
      if (!Plain.ok())
        EXPECT_EQ(Plain.error(), V.Errors[0].message())
            << Def->Name << " legacy formatter drift";
    }
  }
}

TEST(SinkDiffTest, ParseEventsRejectsValueFreeEntries) {
  // A pure token nonterminal erased by dead-token elision cannot emit a
  // replayable stream; the event API must refuse it like streaming does.
  SinkRig R(makeSexpGrammar());
  for (NtId N = 0; N < static_cast<NtId>(R.P.M.Nts.size()); ++N) {
    if (!R.P.M.Nts[N].ValueFree)
      continue;
    std::vector<ParseEvent> Evs;
    Status S = R.P.M.parseEvents(N, ")", Evs);
    EXPECT_FALSE(S.ok());
    return; // one is enough
  }
  GTEST_SKIP() << "no ValueFree nonterminal in this machine";
}

} // namespace
