//===- tests/EnginesTest.cpp - Engine equivalence tests -----------------------===//
//
// Part of flap-cpp, a C++ reproduction of "flap: A Deterministic Parser
// with Fused Lexing" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// The executable-specification chain: the Fig. 8 token interpreter, the
/// Fig. 9 fused interpreter, the staged machine (Fig. 10) and the unfused
/// engine must all accept the same inputs and compute the same semantic
/// values. Staging, in particular, must be observationally invisible.
///
//===----------------------------------------------------------------------===//

#include "engine/DgnfInterp.h"
#include "engine/FusedInterp.h"
#include "engine/Pipeline.h"
#include "engine/Unfused.h"
#include "grammars/Grammars.h"
#include "lexer/LexerInterp.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace flap;

namespace {

struct Engines {
  std::shared_ptr<GrammarDef> Def;
  FlapParser P;
  std::unique_ptr<UnfusedParser> Unfused;

  explicit Engines(std::shared_ptr<GrammarDef> D) : Def(std::move(D)) {
    auto R = compileFlap(Def);
    if (!R.ok()) {
      ADD_FAILURE() << "compile failed: " << R.error();
      return;
    }
    P = R.take();
    Unfused = std::make_unique<UnfusedParser>(
        *Def->Re, P.Canon, P.G, Def->L->Actions, Def->Toks->size());
  }

  /// Runs all four engines; asserts they agree; returns the staged
  /// machine's result.
  Result<Value> runAll(std::string_view In) {
    std::shared_ptr<void> C1, C2, C3, C4;
    auto Fresh = [&](std::shared_ptr<void> &C) -> void * {
      if (Def->NewCtx)
        C = Def->NewCtx();
      return C.get();
    };

    Result<Value> Staged = P.M.parse(In, Fresh(C1));
    Result<Value> FusedI =
        parseFusedInterp(*Def->Re, P.F, Def->L->Actions, In, Fresh(C2));
    Result<Value> Unf = Unfused->parse(In, Fresh(C3));

    EXPECT_EQ(Staged.ok(), FusedI.ok()) << "fused interp vs staged";
    EXPECT_EQ(Staged.ok(), Unf.ok()) << "unfused vs staged";
    if (Staged.ok() && FusedI.ok())
      EXPECT_EQ(*Staged, *FusedI);
    if (Staged.ok() && Unf.ok())
      EXPECT_EQ(*Staged, *Unf);

    // Fig. 8 over the reference lexer (token-level specification).
    auto Toks = lexAll(*Def->Re, P.Canon, In);
    if (Toks.ok()) {
      Result<Value> Dg =
          parseDgnf(P.G, Def->L->Actions, *Toks, In, Fresh(C4));
      EXPECT_EQ(Staged.ok(), Dg.ok()) << "dgnf interp vs staged";
      if (Staged.ok() && Dg.ok())
        EXPECT_EQ(*Staged, *Dg);
    } else {
      EXPECT_FALSE(Staged.ok()) << "lexing failed but staged accepted";
    }
    return Staged;
  }
};

class SexpEnginesTest : public ::testing::Test {
protected:
  SexpEnginesTest() : E(makeSexpGrammar()) {}
  Engines E;
};

TEST_F(SexpEnginesTest, SimpleAccepts) {
  auto R = E.runAll("(a b (c d) eee)");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R->asInt(), 5);
}

TEST_F(SexpEnginesTest, SingleAtom) {
  auto R = E.runAll("hello");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R->asInt(), 1);
}

TEST_F(SexpEnginesTest, LeadingAndTrailingWhitespace) {
  auto R = E.runAll("  ( a )  \n");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R->asInt(), 1);
}

TEST_F(SexpEnginesTest, DeepNesting) {
  std::string In(200, '(');
  In += "x";
  In += std::string(200, ')');
  auto R = E.runAll(In);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R->asInt(), 1);
}

TEST_F(SexpEnginesTest, EmptyList) {
  auto R = E.runAll("()");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R->asInt(), 0);
}

TEST_F(SexpEnginesTest, Rejections) {
  EXPECT_FALSE(E.runAll("").ok());       // sexp is not nullable
  EXPECT_FALSE(E.runAll("(").ok());      // unclosed
  EXPECT_FALSE(E.runAll(")").ok());      // stray close
  EXPECT_FALSE(E.runAll("a b").ok());    // trailing second sexp
  EXPECT_FALSE(E.runAll("(a))").ok());   // extra close
  EXPECT_FALSE(E.runAll("(a!)").ok());   // lexing failure
  EXPECT_FALSE(E.runAll("(a").ok());     // EOF inside list
}

TEST_F(SexpEnginesTest, ByteFlipFuzz) {
  // Randomly corrupt a valid input; every engine must agree on the
  // accept/reject verdict (verified inside runAll).
  Rng R(123);
  std::string Base = "(ab (cd ef) (g (h i)) jk)";
  for (int Trial = 0; Trial < 300; ++Trial) {
    std::string In = Base;
    size_t Where = R.below(In.size());
    In[Where] = static_cast<char>(R.below(128));
    E.runAll(In);
  }
}

TEST_F(SexpEnginesTest, TruncationFuzz) {
  std::string Base = "(ab (cd ef) (g (h i)) jk)";
  for (size_t Len = 0; Len <= Base.size(); ++Len)
    E.runAll(Base.substr(0, Len));
}

TEST_F(SexpEnginesTest, RecognizeMatchesParse) {
  for (const char *In :
       {"(a b)", "x", "", "(", "(a", "(a) b", "  (a b (c))  "}) {
    EXPECT_EQ(E.P.M.recognize(In), E.P.M.parse(In).ok()) << In;
  }
}

TEST_F(SexpEnginesTest, StagedMachineShape) {
  EXPECT_GT(E.P.M.numStates(), 3);
  EXPECT_LT(E.P.M.numStates(), 64);
  // Character classes compress the alphabet far below 256.
  EXPECT_LT(E.P.M.numClasses(), 16);
}

TEST_F(SexpEnginesTest, ErrorMessagesCarryPosition) {
  auto R = E.P.M.parse("(a ?");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("offset 3"), std::string::npos) << R.error();
}

//===----------------------------------------------------------------------===//
// All-grammar agreement on generated corpora
//===----------------------------------------------------------------------===//

class AllEnginesTest : public ::testing::TestWithParam<const char *> {};

TEST_P(AllEnginesTest, EnginesAgreeOnWorkload) {
  std::string Name = GetParam();
  std::shared_ptr<GrammarDef> Def;
  for (auto &G : allBenchmarkGrammars())
    if (G->Name == Name)
      Def = G;
  ASSERT_NE(Def, nullptr);
  Engines E(Def);

  for (uint64_t Seed : {1u, 2u, 3u}) {
    Workload W = genWorkload(Name, Seed, 20000);
    auto R = E.runAll(W.Input);
    ASSERT_TRUE(R.ok()) << Name << " seed " << Seed << ": " << R.error();
    if (W.HasExpected)
      EXPECT_EQ(*R, W.Expected) << Name << " seed " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Grammars, AllEnginesTest,
                         ::testing::Values("sexp", "json", "csv", "pgn",
                                           "ppm", "arith"));

TEST_P(AllEnginesTest, EnginesAgreeOnCorruptedWorkload) {
  std::string Name = GetParam();
  std::shared_ptr<GrammarDef> Def;
  for (auto &G : allBenchmarkGrammars())
    if (G->Name == Name)
      Def = G;
  Engines E(Def);
  Rng R(77);
  Workload W = genWorkload(Name, 9, 2000);
  for (int Trial = 0; Trial < 60; ++Trial) {
    std::string In = W.Input;
    // Flip a few bytes.
    for (int K = 0; K < 3; ++K)
      In[R.below(In.size())] = static_cast<char>(32 + R.below(96));
    E.runAll(In); // agreement asserted inside
  }
}

} // namespace
